(* Tests for the numpy-like Ndlang frontend (§2.1: "the code A @ B
   generates the dataflow of a matrix multiplication"). *)

module T = Tasklang.Types
module Nd = Builder.Ndlang
open Interp

let farr shape f = Tensor.init T.F64 shape (fun idx -> T.F (f idx))

let run p args =
  let g = Nd.finalize p in
  ignore (Exec.run g ~args);
  g

let test_axpy () =
  let p = Nd.program "axpy_nd" in
  let a = Nd.input p "A" ~shape:[ Symbolic.Expr.int 6 ] in
  let b = Nd.input p "B" ~shape:[ Symbolic.Expr.int 6 ] in
  Nd.output p "C" ~shape:[ Symbolic.Expr.int 6 ];
  Nd.assign p "C" Nd.(const 2.0 * a + b);
  let at = farr [| 6 |] (fun i -> float_of_int (List.hd i)) in
  let bt = farr [| 6 |] (fun _ -> 10.) in
  let ct = Tensor.create T.F64 [| 6 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct) ]);
  Alcotest.(check (list (float 1e-9)))
    "C = 2A + B"
    [ 10.; 12.; 14.; 16.; 18.; 20. ]
    (Tensor.to_float_list ct)

let test_matmul_operator () =
  let p = Nd.program "mm_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 3; i 4 ] in
  let b = Nd.input p "B" ~shape:[ i 4; i 2 ] in
  Nd.output p "C" ~shape:[ i 3; i 2 ];
  Nd.assign p "C" Nd.(a @@@ b);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 4) + c) | _ -> 0.)
  in
  let bt =
    farr [| 4; 2 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r - c) | _ -> 0.)
  in
  let ct = Tensor.create T.F64 [| 3; 2 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct) ]);
  (* reference *)
  for r = 0 to 2 do
    for c = 0 to 1 do
      let acc = ref 0. in
      for k = 0 to 3 do
        acc := !acc +. (float_of_int ((r * 4) + k) *. float_of_int (k - c))
      done;
      Alcotest.(check (float 1e-9))
        (Fmt.str "C[%d,%d]" r c)
        !acc
        (T.to_float (Tensor.get ct [ r; c ]))
    done
  done

let test_chained_expression () =
  (* D = (A @ B) + transpose(C) — exercises transient chaining *)
  let p = Nd.program "chain_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 2; i 3 ] in
  let b = Nd.input p "B" ~shape:[ i 3; i 2 ] in
  let c = Nd.input p "C" ~shape:[ i 2; i 2 ] in
  Nd.output p "D" ~shape:[ i 2; i 2 ];
  Nd.assign p "D" Nd.((a @@@ b) + transpose c);
  let at = farr [| 2; 3 |] (fun idx -> float_of_int (List.fold_left ( + ) 1 idx)) in
  let bt = farr [| 3; 2 |] (fun idx -> float_of_int (List.fold_left ( + ) 2 idx)) in
  let ct =
    farr [| 2; 2 |] (fun idx ->
        match idx with [ r; q ] -> float_of_int ((10 * r) + q) | _ -> 0.)
  in
  let dt = Tensor.create T.F64 [| 2; 2 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct); ("D", dt) ]);
  let aref r k = float_of_int (1 + r + k) in
  let bref k q = float_of_int (2 + k + q) in
  for r = 0 to 1 do
    for q = 0 to 1 do
      let acc = ref 0. in
      for k = 0 to 2 do
        acc := !acc +. (aref r k *. bref k q)
      done;
      let expect = !acc +. float_of_int ((10 * q) + r) in
      Alcotest.(check (float 1e-9))
        (Fmt.str "D[%d,%d]" r q)
        expect
        (T.to_float (Tensor.get dt [ r; q ]))
    done
  done

let test_reduction () =
  let p = Nd.program "red_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 3; i 4 ] in
  Nd.output p "rowsum" ~shape:[ i 3 ];
  Nd.assign p "rowsum" Nd.(sum ~axis:1 a);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 10) + c) | _ -> 0.)
  in
  let rt = Tensor.create T.F64 [| 3 |] in
  ignore (run p [ ("A", at); ("rowsum", rt) ]);
  Alcotest.(check (list (float 1e-9)))
    "row sums"
    [ 6.; 46.; 86. ]
    (Tensor.to_float_list rt)

let test_sqrt_and_scalar () =
  let p = Nd.program "norm_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 4 ] in
  Nd.output p "nrm" ~shape:[];
  Nd.assign p "nrm" Nd.(sqrt_ (sum ~axis:0 (a * a)));
  let at = farr [| 4 |] (fun i -> float_of_int (1 + List.hd i)) in
  let nt = Tensor.create T.F64 [||] in
  ignore (run p [ ("A", at); ("nrm", nt) ]);
  Alcotest.(check (float 1e-9)) "2-norm"
    (sqrt (1. +. 4. +. 9. +. 16.))
    (T.to_float (Tensor.get_scalar nt))

let test_shape_errors () =
  let fails f =
    match f () with
    | exception Nd.Frontend_error _ -> ()
    | _ -> Alcotest.fail "expected Frontend_error"
  in
  fails (fun () ->
      let p = Nd.program "bad1" in
      let i n = Symbolic.Expr.int n in
      let a = Nd.input p "A" ~shape:[ i 2; i 3 ] in
      let b = Nd.input p "B" ~shape:[ i 4; i 2 ] in
      Nd.output p "C" ~shape:[ i 2; i 2 ];
      (* inner dimensions agree only structurally at lowering; rank errors
         are caught eagerly *)
      Nd.assign p "C" Nd.(transpose (a + b)))

let test_gpu_portability () =
  (* a frontend program ports to the GPU like any other SDFG *)
  let p = Nd.program "port_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 4; i 4 ] in
  Nd.output p "C" ~shape:[ i 4; i 4 ];
  Nd.assign p "C" Nd.((a @@@ a) - a);
  let g = Nd.finalize p in
  let run g =
    let at =
      farr [| 4; 4 |] (fun idx ->
          match idx with [ r; c ] -> sin (float_of_int ((3 * r) + c)) | _ -> 0.)
    in
    let ct = Tensor.create T.F64 [| 4; 4 |] in
    ignore (Exec.run g ~args:[ ("A", at); ("C", ct) ]);
    Tensor.to_float_list ct
  in
  let reference = run g in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform;
  Alcotest.(check (list (float 1e-9))) "GPU port identical" reference (run g)

(* --- text frontend ------------------------------------------------------- *)

(* The text surface must elaborate to the same graph as the combinators:
   identical canonical serialization, hence identical execution. *)
let test_parse_matches_combinators () =
  let src = "# axpy\ninput A[6]\ninput B[6]\noutput C[6]\nC = 2.0 * A + B\n" in
  let g = Nd.parse src ~name:"axpy_nd" in
  let p = Nd.program "axpy_nd" in
  let a = Nd.input p "A" ~shape:[ Symbolic.Expr.int 6 ] in
  let b = Nd.input p "B" ~shape:[ Symbolic.Expr.int 6 ] in
  Nd.output p "C" ~shape:[ Symbolic.Expr.int 6 ];
  Nd.assign p "C" Nd.(const 2.0 * a + b);
  Alcotest.(check string) "text = combinators (canonical form)"
    (Sdfg_ir.Serialize.to_string (Nd.finalize p))
    (Sdfg_ir.Serialize.to_string g)

let test_parse_and_run () =
  let src =
    "input A[N, K]\ninput B[K, N]\noutput C[N, N]\n\
     C = A @ B - transpose(A @ B)\n"
  in
  let g = Nd.parse src in
  let symbols = [ ("K", 4); ("N", 3) ] in
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 4) + c) | _ -> 0.)
  in
  let bt =
    farr [| 4; 3 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r - c) | _ -> 0.)
  in
  let ct = Tensor.create T.F64 [| 3; 3 |] in
  ignore (Exec.run g ~symbols ~args:[ ("A", at); ("B", bt); ("C", ct) ]);
  (* M = A@B - (A@B)^T is antisymmetric: zero diagonal, C[r,c] = -C[c,r]. *)
  for r = 0 to 2 do
    Alcotest.(check (float 1e-9))
      (Fmt.str "C[%d,%d] = 0" r r)
      0.
      (T.to_float (Tensor.get ct [ r; r ]));
    for c = 0 to 2 do
      Alcotest.(check (float 1e-9))
        (Fmt.str "C antisymmetric at [%d,%d]" r c)
        (-.T.to_float (Tensor.get ct [ c; r ]))
        (T.to_float (Tensor.get ct [ r; c ]))
    done
  done

let test_parse_sum_and_calls () =
  let src =
    "input A[4, 3]\noutput s[3]\noutput r[3]\n\
     s = sum(A, 0)\nr = sqrt(s * s) + (s - s)\n"
  in
  let g = Nd.parse src in
  let at =
    farr [| 4; 3 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r + 1) *. float_of_int (c - 1) | _ -> 0.)
  in
  let st = Tensor.create T.F64 [| 3 |] in
  let rt = Tensor.create T.F64 [| 3 |] in
  ignore (Exec.run g ~args:[ ("A", at); ("s", st); ("r", rt) ]);
  Alcotest.(check (list (float 1e-9)))
    "column sums" [ -10.; 0.; 10. ] (Tensor.to_float_list st);
  Alcotest.(check (list (float 1e-9)))
    "r = |s|" [ 10.; 0.; 10. ] (Tensor.to_float_list rt)

let test_softmax_combinators () =
  (* row softmax via amax/exp/sum-keep/division with extent-1 broadcast *)
  let p = Nd.program "softmax_nd" in
  let i n = Symbolic.Expr.int n in
  let s = Nd.input p "S" ~shape:[ i 3; i 4 ] in
  Nd.output p "O" ~shape:[ i 3; i 4 ];
  let e = Nd.(exp_ (s - amax ~keep:true ~axis:1 s)) in
  Nd.assign p "O" Nd.(e / sum ~keep:true ~axis:1 e);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with
        | [ r; c ] -> float_of_int ((r * 3) + (c * c)) /. 7.
        | _ -> 0.)
  in
  let ot = Tensor.create T.F64 [| 3; 4 |] in
  ignore (run p [ ("S", at); ("O", ot) ]);
  for r = 0 to 2 do
    let row = List.init 4 (fun c -> T.to_float (Tensor.get at [ r; c ])) in
    let m = List.fold_left max neg_infinity row in
    let es = List.map (fun v -> exp (v -. m)) row in
    let z = List.fold_left ( +. ) 0. es in
    List.iteri
      (fun c ev ->
        Alcotest.(check (float 1e-12))
          (Fmt.str "softmax[%d,%d]" r c)
          (ev /. z)
          (T.to_float (Tensor.get ot [ r; c ])))
      es
  done

let test_max_and_exp_elementwise () =
  let p = Nd.program "maxexp_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 5 ] in
  Nd.output p "B" ~shape:[ i 5 ];
  Nd.assign p "B" Nd.(max_ a (const 0.) + exp_ (const 0. - a));
  let at = farr [| 5 |] (fun i -> float_of_int (List.hd i - 2)) in
  let bt = Tensor.create T.F64 [| 5 |] in
  ignore (run p [ ("A", at); ("B", bt) ]);
  Alcotest.(check (list (float 1e-12)))
    "relu(a) + exp(-a)"
    (List.init 5 (fun i ->
         let v = float_of_int (i - 2) in
         Stdlib.max v 0. +. exp (-.v)))
    (Tensor.to_float_list bt)

let test_gather_combinators () =
  let p = Nd.program "gather_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 5; i 3 ] in
  let idx = Nd.input p "idx" ~shape:[ i 4 ] in
  Nd.output p "G" ~shape:[ i 4; i 3 ];
  Nd.assign p "G" Nd.(gather a [ Ix (idx, [ "i" ]); Ax "j" ]);
  let at =
    farr [| 5; 3 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((10 * r) + c) | _ -> 0.)
  in
  let rows = [| 3; 0; 2; 2 |] in
  let it = farr [| 4 |] (fun i -> float_of_int rows.(List.hd i)) in
  let gt = Tensor.create T.F64 [| 4; 3 |] in
  ignore (run p [ ("A", at); ("idx", it); ("G", gt) ]);
  for i = 0 to 3 do
    for j = 0 to 2 do
      Alcotest.(check (float 1e-12))
        (Fmt.str "G[%d,%d]" i j)
        (float_of_int ((10 * rows.(i)) + j))
        (T.to_float (Tensor.get gt [ i; j ]))
    done
  done

let test_parse_softmax_matches_combinators () =
  (* the softmax constructs must elaborate identically from text and
     combinators: amax-keep, exp, sum-keep, division, broadcasting *)
  let src =
    "input S[3, 4]\noutput O[3, 4]\ntemp m[3, 1]\ntemp E[3, 4]\n\
     temp Z[3, 1]\nm = amax(S, 1, keep)\nE = exp(S - m)\n\
     Z = sum(E, 1, keep)\nO = E / Z\n"
  in
  let g = Nd.parse src ~name:"softmax_txt" in
  let p = Nd.program "softmax_txt" in
  let i n = Symbolic.Expr.int n in
  let s = Nd.input p "S" ~shape:[ i 3; i 4 ] in
  Nd.output p "O" ~shape:[ i 3; i 4 ];
  Nd.temp p "m" ~shape:[ i 3; i 1 ];
  Nd.temp p "E" ~shape:[ i 3; i 4 ];
  Nd.temp p "Z" ~shape:[ i 3; i 1 ];
  Nd.assign p "m" Nd.(amax ~keep:true ~axis:1 s);
  Nd.assign p "E" Nd.(exp_ (s - leaf p "m"));
  Nd.assign p "Z" Nd.(sum ~keep:true ~axis:1 (leaf p "E"));
  Nd.assign p "O" Nd.(leaf p "E" / leaf p "Z");
  Alcotest.(check string) "text = combinators (canonical form)"
    (Sdfg_ir.Serialize.to_string (Nd.finalize p))
    (Sdfg_ir.Serialize.to_string g)

let test_parse_gather_and_roundtrip () =
  let src =
    "input A[5, 3]\ninput idx[4]\noutput G[4, 3]\nG = A[idx[i], j]\n"
  in
  let g = Nd.parse src in
  (* the graph (dynamic memlets, floor-indexed tasklet) must survive the
     canonical printer/parser fixpoint *)
  let txt = Sdfg_ir.Serialize.to_string g in
  let g2 = Sdfg_ir.Serialize.of_string txt in
  Alcotest.(check string) "serialize fixpoint" txt
    (Sdfg_ir.Serialize.to_string g2);
  let at =
    farr [| 5; 3 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((10 * r) + c) | _ -> 0.)
  in
  let rows = [| 1; 4; 0; 2 |] in
  let it = farr [| 4 |] (fun i -> float_of_int rows.(List.hd i)) in
  let gt = Tensor.create T.F64 [| 4; 3 |] in
  ignore (Exec.run g ~args:[ ("A", at); ("idx", it); ("G", gt) ]);
  for i = 0 to 3 do
    for j = 0 to 2 do
      Alcotest.(check (float 1e-12))
        (Fmt.str "G[%d,%d]" i j)
        (float_of_int ((10 * rows.(i)) + j))
        (T.to_float (Tensor.get gt [ i; j ]))
    done
  done

let test_parse_max_amax_roundtrip () =
  (* amax without keep drops the axis; max is elementwise; the built
     graph survives the canonical fixpoint (WCR-max maps included) *)
  let src =
    "input A[3, 4]\ninput B[3]\noutput M[3]\nM = max(amax(A, 1), B)\n"
  in
  let g = Nd.parse src in
  let txt = Sdfg_ir.Serialize.to_string g in
  Alcotest.(check string) "serialize fixpoint" txt
    (Sdfg_ir.Serialize.to_string (Sdfg_ir.Serialize.of_string txt));
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with
        | [ r; c ] -> float_of_int ((r * 2) - (c * c)) /. 3.
        | _ -> 0.)
  in
  let bt = farr [| 3 |] (fun i -> float_of_int (List.hd i) -. 0.5) in
  let mt = Tensor.create T.F64 [| 3 |] in
  ignore (Exec.run g ~args:[ ("A", at); ("B", bt); ("M", mt) ]);
  Alcotest.(check (list (float 1e-12)))
    "max(rowmax, B)"
    (List.init 3 (fun r ->
         let rm =
           List.fold_left Stdlib.max neg_infinity
             (List.init 4 (fun c -> float_of_int ((r * 2) - (c * c)) /. 3.))
         in
         Stdlib.max rm (float_of_int r -. 0.5)))
    (Tensor.to_float_list mt)

let test_parse_errors () =
  let expect_line n src =
    match Nd.parse src with
    | exception Nd.Frontend_error msg ->
      let contains s sub =
        let ln = String.length s and m = String.length sub in
        let rec go i = i + m <= ln && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Fmt.str "error %S names line %d" msg n)
        true
        (contains msg (Fmt.str "line %d" n))
    | _ -> Alcotest.fail "malformed program must raise Frontend_error"
  in
  expect_line 2 "input A[4]\nB = A + 1.0\n";           (* undeclared target *)
  expect_line 3 "input A[4]\noutput B[4]\nB = A @ A\n" (* rank-1 matmul *);
  expect_line 1 "input A[4\n";                         (* unclosed bracket *)
  expect_line 3 "input A[4]\noutput B[4]\nB = A + + A\n";  (* syntax *)
  (* shape mismatch surfaces on the assignment line *)
  expect_line 4 "input A[4]\ninput C[5]\noutput B[4]\nB = A + C\n";
  (* shape-mismatched softmax: amax-keep gives [3, 1], m declares [3] *)
  expect_line 3 "input S[3, 4]\ntemp m[3]\nm = amax(S, 1, keep)\n";
  (* broadcast needs extent 1, not just any mismatch *)
  expect_line 4 "input S[3, 4]\ninput m[3, 2]\noutput E[3, 4]\nE = S - m\n";
  (* reduction axis out of range *)
  expect_line 3 "input S[3, 4]\ntemp m[3, 1]\nm = amax(S, 2, keep)\n";
  (* gather: wrong subscript count for the operand rank *)
  expect_line 4 "input A[4, 3]\ninput idx[2]\noutput G[2, 3]\nG = A[idx[i]]\n";
  (* gather: index must be a declared container *)
  expect_line 4 "input A[4, 3]\ninput idx[2]\noutput G[2, 3]\nG = A[foo[i], j]\n";
  (* gather: bare subscript colliding with a container name *)
  expect_line 4
    "input A[4, 3]\ninput idx[2]\noutput G[2, 3]\nG = A[idx[i], idx]\n";
  (* gather: repeated axis with disagreeing extents *)
  expect_line 4
    "input A[4, 3]\ninput idx[2]\noutput G[2, 3]\nG = A[idx[j], j]\n";
  (* gather: at least one subscript must be an index expression *)
  expect_line 4 "input A[4, 3]\ninput idx[2]\noutput G[4, 3]\nG = A[i, j]\n"

let suite =
  [ ("axpy with constants", `Quick, test_axpy);
    ("A @ B lowers to matmul dataflow", `Quick, test_matmul_operator);
    ("chained expression with transients", `Quick, test_chained_expression);
    ("axis reduction via Reduce node", `Quick, test_reduction);
    ("sqrt of a scalar reduction", `Quick, test_sqrt_and_scalar);
    ("shape errors rejected", `Quick, test_shape_errors);
    ("frontend programs are portable", `Quick, test_gpu_portability);
    ("text parse = combinators", `Quick, test_parse_matches_combinators);
    ("text program with matmul and transpose", `Quick, test_parse_and_run);
    ("text program with sum and calls", `Quick, test_parse_sum_and_calls);
    ("softmax chain via amax/exp/sum-keep", `Quick, test_softmax_combinators);
    ("elementwise max and exp", `Quick, test_max_and_exp_elementwise);
    ("gather via index array", `Quick, test_gather_combinators);
    ("text softmax = combinators", `Quick, test_parse_softmax_matches_combinators);
    ("text gather parses, runs, round-trips", `Quick,
     test_parse_gather_and_roundtrip);
    ("text amax/max round-trips", `Quick, test_parse_max_amax_roundtrip);
    ("parse errors carry line numbers", `Quick, test_parse_errors) ]
