(* Tests for the numpy-like Ndlang frontend (§2.1: "the code A @ B
   generates the dataflow of a matrix multiplication"). *)

module T = Tasklang.Types
module Nd = Builder.Ndlang
open Interp

let farr shape f = Tensor.init T.F64 shape (fun idx -> T.F (f idx))

let run p args =
  let g = Nd.finalize p in
  ignore (Exec.run g ~args);
  g

let test_axpy () =
  let p = Nd.program "axpy_nd" in
  let a = Nd.input p "A" ~shape:[ Symbolic.Expr.int 6 ] in
  let b = Nd.input p "B" ~shape:[ Symbolic.Expr.int 6 ] in
  Nd.output p "C" ~shape:[ Symbolic.Expr.int 6 ];
  Nd.assign p "C" Nd.(const 2.0 * a + b);
  let at = farr [| 6 |] (fun i -> float_of_int (List.hd i)) in
  let bt = farr [| 6 |] (fun _ -> 10.) in
  let ct = Tensor.create T.F64 [| 6 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct) ]);
  Alcotest.(check (list (float 1e-9)))
    "C = 2A + B"
    [ 10.; 12.; 14.; 16.; 18.; 20. ]
    (Tensor.to_float_list ct)

let test_matmul_operator () =
  let p = Nd.program "mm_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 3; i 4 ] in
  let b = Nd.input p "B" ~shape:[ i 4; i 2 ] in
  Nd.output p "C" ~shape:[ i 3; i 2 ];
  Nd.assign p "C" Nd.(a @@@ b);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 4) + c) | _ -> 0.)
  in
  let bt =
    farr [| 4; 2 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r - c) | _ -> 0.)
  in
  let ct = Tensor.create T.F64 [| 3; 2 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct) ]);
  (* reference *)
  for r = 0 to 2 do
    for c = 0 to 1 do
      let acc = ref 0. in
      for k = 0 to 3 do
        acc := !acc +. (float_of_int ((r * 4) + k) *. float_of_int (k - c))
      done;
      Alcotest.(check (float 1e-9))
        (Fmt.str "C[%d,%d]" r c)
        !acc
        (T.to_float (Tensor.get ct [ r; c ]))
    done
  done

let test_chained_expression () =
  (* D = (A @ B) + transpose(C) — exercises transient chaining *)
  let p = Nd.program "chain_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 2; i 3 ] in
  let b = Nd.input p "B" ~shape:[ i 3; i 2 ] in
  let c = Nd.input p "C" ~shape:[ i 2; i 2 ] in
  Nd.output p "D" ~shape:[ i 2; i 2 ];
  Nd.assign p "D" Nd.((a @@@ b) + transpose c);
  let at = farr [| 2; 3 |] (fun idx -> float_of_int (List.fold_left ( + ) 1 idx)) in
  let bt = farr [| 3; 2 |] (fun idx -> float_of_int (List.fold_left ( + ) 2 idx)) in
  let ct =
    farr [| 2; 2 |] (fun idx ->
        match idx with [ r; q ] -> float_of_int ((10 * r) + q) | _ -> 0.)
  in
  let dt = Tensor.create T.F64 [| 2; 2 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct); ("D", dt) ]);
  let aref r k = float_of_int (1 + r + k) in
  let bref k q = float_of_int (2 + k + q) in
  for r = 0 to 1 do
    for q = 0 to 1 do
      let acc = ref 0. in
      for k = 0 to 2 do
        acc := !acc +. (aref r k *. bref k q)
      done;
      let expect = !acc +. float_of_int ((10 * q) + r) in
      Alcotest.(check (float 1e-9))
        (Fmt.str "D[%d,%d]" r q)
        expect
        (T.to_float (Tensor.get dt [ r; q ]))
    done
  done

let test_reduction () =
  let p = Nd.program "red_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 3; i 4 ] in
  Nd.output p "rowsum" ~shape:[ i 3 ];
  Nd.assign p "rowsum" Nd.(sum ~axis:1 a);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 10) + c) | _ -> 0.)
  in
  let rt = Tensor.create T.F64 [| 3 |] in
  ignore (run p [ ("A", at); ("rowsum", rt) ]);
  Alcotest.(check (list (float 1e-9)))
    "row sums"
    [ 6.; 46.; 86. ]
    (Tensor.to_float_list rt)

let test_sqrt_and_scalar () =
  let p = Nd.program "norm_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 4 ] in
  Nd.output p "nrm" ~shape:[];
  Nd.assign p "nrm" Nd.(sqrt_ (sum ~axis:0 (a * a)));
  let at = farr [| 4 |] (fun i -> float_of_int (1 + List.hd i)) in
  let nt = Tensor.create T.F64 [||] in
  ignore (run p [ ("A", at); ("nrm", nt) ]);
  Alcotest.(check (float 1e-9)) "2-norm"
    (sqrt (1. +. 4. +. 9. +. 16.))
    (T.to_float (Tensor.get_scalar nt))

let test_shape_errors () =
  let fails f =
    match f () with
    | exception Nd.Frontend_error _ -> ()
    | _ -> Alcotest.fail "expected Frontend_error"
  in
  fails (fun () ->
      let p = Nd.program "bad1" in
      let i n = Symbolic.Expr.int n in
      let a = Nd.input p "A" ~shape:[ i 2; i 3 ] in
      let b = Nd.input p "B" ~shape:[ i 4; i 2 ] in
      Nd.output p "C" ~shape:[ i 2; i 2 ];
      (* inner dimensions agree only structurally at lowering; rank errors
         are caught eagerly *)
      Nd.assign p "C" Nd.(transpose (a + b)))

let test_gpu_portability () =
  (* a frontend program ports to the GPU like any other SDFG *)
  let p = Nd.program "port_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 4; i 4 ] in
  Nd.output p "C" ~shape:[ i 4; i 4 ];
  Nd.assign p "C" Nd.((a @@@ a) - a);
  let g = Nd.finalize p in
  let run g =
    let at =
      farr [| 4; 4 |] (fun idx ->
          match idx with [ r; c ] -> sin (float_of_int ((3 * r) + c)) | _ -> 0.)
    in
    let ct = Tensor.create T.F64 [| 4; 4 |] in
    ignore (Exec.run g ~args:[ ("A", at); ("C", ct) ]);
    Tensor.to_float_list ct
  in
  let reference = run g in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform;
  Alcotest.(check (list (float 1e-9))) "GPU port identical" reference (run g)

let suite =
  [ ("axpy with constants", `Quick, test_axpy);
    ("A @ B lowers to matmul dataflow", `Quick, test_matmul_operator);
    ("chained expression with transients", `Quick, test_chained_expression);
    ("axis reduction via Reduce node", `Quick, test_reduction);
    ("sqrt of a scalar reduction", `Quick, test_sqrt_and_scalar);
    ("shape errors rejected", `Quick, test_shape_errors);
    ("frontend programs are portable", `Quick, test_gpu_portability) ]
