(* Tests for the numpy-like Ndlang frontend (§2.1: "the code A @ B
   generates the dataflow of a matrix multiplication"). *)

module T = Tasklang.Types
module Nd = Builder.Ndlang
open Interp

let farr shape f = Tensor.init T.F64 shape (fun idx -> T.F (f idx))

let run p args =
  let g = Nd.finalize p in
  ignore (Exec.run g ~args);
  g

let test_axpy () =
  let p = Nd.program "axpy_nd" in
  let a = Nd.input p "A" ~shape:[ Symbolic.Expr.int 6 ] in
  let b = Nd.input p "B" ~shape:[ Symbolic.Expr.int 6 ] in
  Nd.output p "C" ~shape:[ Symbolic.Expr.int 6 ];
  Nd.assign p "C" Nd.(const 2.0 * a + b);
  let at = farr [| 6 |] (fun i -> float_of_int (List.hd i)) in
  let bt = farr [| 6 |] (fun _ -> 10.) in
  let ct = Tensor.create T.F64 [| 6 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct) ]);
  Alcotest.(check (list (float 1e-9)))
    "C = 2A + B"
    [ 10.; 12.; 14.; 16.; 18.; 20. ]
    (Tensor.to_float_list ct)

let test_matmul_operator () =
  let p = Nd.program "mm_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 3; i 4 ] in
  let b = Nd.input p "B" ~shape:[ i 4; i 2 ] in
  Nd.output p "C" ~shape:[ i 3; i 2 ];
  Nd.assign p "C" Nd.(a @@@ b);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 4) + c) | _ -> 0.)
  in
  let bt =
    farr [| 4; 2 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r - c) | _ -> 0.)
  in
  let ct = Tensor.create T.F64 [| 3; 2 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct) ]);
  (* reference *)
  for r = 0 to 2 do
    for c = 0 to 1 do
      let acc = ref 0. in
      for k = 0 to 3 do
        acc := !acc +. (float_of_int ((r * 4) + k) *. float_of_int (k - c))
      done;
      Alcotest.(check (float 1e-9))
        (Fmt.str "C[%d,%d]" r c)
        !acc
        (T.to_float (Tensor.get ct [ r; c ]))
    done
  done

let test_chained_expression () =
  (* D = (A @ B) + transpose(C) — exercises transient chaining *)
  let p = Nd.program "chain_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 2; i 3 ] in
  let b = Nd.input p "B" ~shape:[ i 3; i 2 ] in
  let c = Nd.input p "C" ~shape:[ i 2; i 2 ] in
  Nd.output p "D" ~shape:[ i 2; i 2 ];
  Nd.assign p "D" Nd.((a @@@ b) + transpose c);
  let at = farr [| 2; 3 |] (fun idx -> float_of_int (List.fold_left ( + ) 1 idx)) in
  let bt = farr [| 3; 2 |] (fun idx -> float_of_int (List.fold_left ( + ) 2 idx)) in
  let ct =
    farr [| 2; 2 |] (fun idx ->
        match idx with [ r; q ] -> float_of_int ((10 * r) + q) | _ -> 0.)
  in
  let dt = Tensor.create T.F64 [| 2; 2 |] in
  ignore (run p [ ("A", at); ("B", bt); ("C", ct); ("D", dt) ]);
  let aref r k = float_of_int (1 + r + k) in
  let bref k q = float_of_int (2 + k + q) in
  for r = 0 to 1 do
    for q = 0 to 1 do
      let acc = ref 0. in
      for k = 0 to 2 do
        acc := !acc +. (aref r k *. bref k q)
      done;
      let expect = !acc +. float_of_int ((10 * q) + r) in
      Alcotest.(check (float 1e-9))
        (Fmt.str "D[%d,%d]" r q)
        expect
        (T.to_float (Tensor.get dt [ r; q ]))
    done
  done

let test_reduction () =
  let p = Nd.program "red_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 3; i 4 ] in
  Nd.output p "rowsum" ~shape:[ i 3 ];
  Nd.assign p "rowsum" Nd.(sum ~axis:1 a);
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 10) + c) | _ -> 0.)
  in
  let rt = Tensor.create T.F64 [| 3 |] in
  ignore (run p [ ("A", at); ("rowsum", rt) ]);
  Alcotest.(check (list (float 1e-9)))
    "row sums"
    [ 6.; 46.; 86. ]
    (Tensor.to_float_list rt)

let test_sqrt_and_scalar () =
  let p = Nd.program "norm_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 4 ] in
  Nd.output p "nrm" ~shape:[];
  Nd.assign p "nrm" Nd.(sqrt_ (sum ~axis:0 (a * a)));
  let at = farr [| 4 |] (fun i -> float_of_int (1 + List.hd i)) in
  let nt = Tensor.create T.F64 [||] in
  ignore (run p [ ("A", at); ("nrm", nt) ]);
  Alcotest.(check (float 1e-9)) "2-norm"
    (sqrt (1. +. 4. +. 9. +. 16.))
    (T.to_float (Tensor.get_scalar nt))

let test_shape_errors () =
  let fails f =
    match f () with
    | exception Nd.Frontend_error _ -> ()
    | _ -> Alcotest.fail "expected Frontend_error"
  in
  fails (fun () ->
      let p = Nd.program "bad1" in
      let i n = Symbolic.Expr.int n in
      let a = Nd.input p "A" ~shape:[ i 2; i 3 ] in
      let b = Nd.input p "B" ~shape:[ i 4; i 2 ] in
      Nd.output p "C" ~shape:[ i 2; i 2 ];
      (* inner dimensions agree only structurally at lowering; rank errors
         are caught eagerly *)
      Nd.assign p "C" Nd.(transpose (a + b)))

let test_gpu_portability () =
  (* a frontend program ports to the GPU like any other SDFG *)
  let p = Nd.program "port_nd" in
  let i n = Symbolic.Expr.int n in
  let a = Nd.input p "A" ~shape:[ i 4; i 4 ] in
  Nd.output p "C" ~shape:[ i 4; i 4 ];
  Nd.assign p "C" Nd.((a @@@ a) - a);
  let g = Nd.finalize p in
  let run g =
    let at =
      farr [| 4; 4 |] (fun idx ->
          match idx with [ r; c ] -> sin (float_of_int ((3 * r) + c)) | _ -> 0.)
    in
    let ct = Tensor.create T.F64 [| 4; 4 |] in
    ignore (Exec.run g ~args:[ ("A", at); ("C", ct) ]);
    Tensor.to_float_list ct
  in
  let reference = run g in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform;
  Alcotest.(check (list (float 1e-9))) "GPU port identical" reference (run g)

(* --- text frontend ------------------------------------------------------- *)

(* The text surface must elaborate to the same graph as the combinators:
   identical canonical serialization, hence identical execution. *)
let test_parse_matches_combinators () =
  let src = "# axpy\ninput A[6]\ninput B[6]\noutput C[6]\nC = 2.0 * A + B\n" in
  let g = Nd.parse src ~name:"axpy_nd" in
  let p = Nd.program "axpy_nd" in
  let a = Nd.input p "A" ~shape:[ Symbolic.Expr.int 6 ] in
  let b = Nd.input p "B" ~shape:[ Symbolic.Expr.int 6 ] in
  Nd.output p "C" ~shape:[ Symbolic.Expr.int 6 ];
  Nd.assign p "C" Nd.(const 2.0 * a + b);
  Alcotest.(check string) "text = combinators (canonical form)"
    (Sdfg_ir.Serialize.to_string (Nd.finalize p))
    (Sdfg_ir.Serialize.to_string g)

let test_parse_and_run () =
  let src =
    "input A[N, K]\ninput B[K, N]\noutput C[N, N]\n\
     C = A @ B - transpose(A @ B)\n"
  in
  let g = Nd.parse src in
  let symbols = [ ("K", 4); ("N", 3) ] in
  let at =
    farr [| 3; 4 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int ((r * 4) + c) | _ -> 0.)
  in
  let bt =
    farr [| 4; 3 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r - c) | _ -> 0.)
  in
  let ct = Tensor.create T.F64 [| 3; 3 |] in
  ignore (Exec.run g ~symbols ~args:[ ("A", at); ("B", bt); ("C", ct) ]);
  (* M = A@B - (A@B)^T is antisymmetric: zero diagonal, C[r,c] = -C[c,r]. *)
  for r = 0 to 2 do
    Alcotest.(check (float 1e-9))
      (Fmt.str "C[%d,%d] = 0" r r)
      0.
      (T.to_float (Tensor.get ct [ r; r ]));
    for c = 0 to 2 do
      Alcotest.(check (float 1e-9))
        (Fmt.str "C antisymmetric at [%d,%d]" r c)
        (-.T.to_float (Tensor.get ct [ c; r ]))
        (T.to_float (Tensor.get ct [ r; c ]))
    done
  done

let test_parse_sum_and_calls () =
  let src =
    "input A[4, 3]\noutput s[3]\noutput r[3]\n\
     s = sum(A, 0)\nr = sqrt(s * s) + (s - s)\n"
  in
  let g = Nd.parse src in
  let at =
    farr [| 4; 3 |] (fun idx ->
        match idx with [ r; c ] -> float_of_int (r + 1) *. float_of_int (c - 1) | _ -> 0.)
  in
  let st = Tensor.create T.F64 [| 3 |] in
  let rt = Tensor.create T.F64 [| 3 |] in
  ignore (Exec.run g ~args:[ ("A", at); ("s", st); ("r", rt) ]);
  Alcotest.(check (list (float 1e-9)))
    "column sums" [ -10.; 0.; 10. ] (Tensor.to_float_list st);
  Alcotest.(check (list (float 1e-9)))
    "r = |s|" [ 10.; 0.; 10. ] (Tensor.to_float_list rt)

let test_parse_errors () =
  let expect_line n src =
    match Nd.parse src with
    | exception Nd.Frontend_error msg ->
      let contains s sub =
        let ln = String.length s and m = String.length sub in
        let rec go i = i + m <= ln && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Fmt.str "error %S names line %d" msg n)
        true
        (contains msg (Fmt.str "line %d" n))
    | _ -> Alcotest.fail "malformed program must raise Frontend_error"
  in
  expect_line 2 "input A[4]\nB = A + 1.0\n";           (* undeclared target *)
  expect_line 3 "input A[4]\noutput B[4]\nB = A @ A\n" (* rank-1 matmul *);
  expect_line 1 "input A[4\n";                         (* unclosed bracket *)
  expect_line 3 "input A[4]\noutput B[4]\nB = A + + A\n";  (* syntax *)
  (* shape mismatch surfaces on the assignment line *)
  expect_line 4 "input A[4]\ninput C[5]\noutput B[4]\nB = A + C\n"

let suite =
  [ ("axpy with constants", `Quick, test_axpy);
    ("A @ B lowers to matmul dataflow", `Quick, test_matmul_operator);
    ("chained expression with transients", `Quick, test_chained_expression);
    ("axis reduction via Reduce node", `Quick, test_reduction);
    ("sqrt of a scalar reduction", `Quick, test_sqrt_and_scalar);
    ("shape errors rejected", `Quick, test_shape_errors);
    ("frontend programs are portable", `Quick, test_gpu_portability);
    ("text parse = combinators", `Quick, test_parse_matches_combinators);
    ("text program with matmul and transpose", `Quick, test_parse_and_run);
    ("text program with sum and calls", `Quick, test_parse_sum_and_calls);
    ("parse errors carry line numbers", `Quick, test_parse_errors) ]
