(* The auto-optimizer (lib/opt) and the result-based Xform surface:
   chain round-trips over the whole registry, determinism of model-only
   searches, the no-profiling guarantee, budget handling, and
   cross-validation of auto-optimized graphs against the reference
   engine. *)

module X = Transform.Xform
module Search = Opt.Search
module Cost = Machine.Cost

let () = Transform.Std.register_all ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let kernel name =
  List.find
    (fun (k : Workloads.Polybench.kernel) -> String.equal k.k_name name)
    Workloads.Polybench.all

let search_config ?(objective = Search.Model_only) ?budget_s ?(beam = 2)
    ?(max_steps = 3) (k : Workloads.Polybench.kernel) =
  Search.config ~target:Cost.Tcpu ~symbols:k.k_large ~measure_symbols:k.k_mini
    ~opts:{ Cost.default_options with hints = k.k_hints k.k_large }
    ~objective ?budget_s ~beam ~max_steps ~repeat:2 ~warmup:0 ()

(* --- result-based application surface ------------------------------------ *)

let t_result_api () =
  let g = Workloads.Kernels.matmul_mapreduce () in
  (match X.apply_first g Transform.Fusion_xforms.map_reduce_fusion with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "map_reduce_fusion should apply: %s" msg);
  (* fused once, the map-reduce pattern is gone: a second application
     reports Error rather than raising *)
  (match X.apply_first g Transform.Fusion_xforms.map_reduce_fusion with
  | Ok () -> Alcotest.fail "expected Error for a non-matching transformation"
  | Error msg ->
    Alcotest.(check bool)
      "message names the missing match" true
      (contains ~sub:"no matching subgraph" msg));
  (* fixpoint application with no match is Ok: the fixpoint is reached *)
  match X.apply_until_fixpoint g Transform.Fusion_xforms.map_reduce_fusion with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fixpoint with no match should be Ok: %s" msg

let t_registry_sorted () =
  let names = X.names () in
  Alcotest.(check (list string))
    "names () is sorted" (List.sort String.compare names) names;
  Alcotest.(check bool) "registry is non-empty" true (List.length names > 10);
  Alcotest.(check (list string))
    "all () matches names ()"
    (List.map (fun (x : X.t) -> x.x_name) (X.all ()))
    names

(* --- chain round-trips over the whole registry --------------------------- *)

let t_chain_roundtrip () =
  (* every registered name, as single-step and as one long chain, with
     non-trivial candidate indices *)
  List.iteri
    (fun i name ->
      let steps = [ { X.cs_xform = name; cs_index = i mod 3 } ] in
      Alcotest.(check bool)
        (name ^ " round-trips") true
        (X.chain_of_string (X.chain_to_string steps) = steps))
    (X.names ());
  let long =
    List.mapi (fun i name -> { X.cs_xform = name; cs_index = i }) (X.names ())
  in
  Alcotest.(check bool)
    "full-registry chain round-trips" true
    (X.chain_of_string (X.chain_to_string long) = long)

let t_chain_malformed () =
  (match X.chain_of_string "MapTiling one" with
  | _ -> Alcotest.fail "expected Not_applicable on a malformed line"
  | exception X.Not_applicable msg ->
    Alcotest.(check bool)
      "message says malformed" true
      (contains ~sub:"malformed" msg));
  match X.chain_of_string "MapTiling 1 2 3" with
  | _ -> Alcotest.fail "expected Not_applicable on extra fields"
  | exception X.Not_applicable _ -> ()

let t_chain_unknown_name () =
  let g = (kernel "gemm").k_build () in
  match X.apply_chain g [ { X.cs_xform = "NoSuchXform"; cs_index = 0 } ] with
  | Ok () -> Alcotest.fail "expected Error for an unknown transformation"
  | Error msg ->
    Alcotest.(check bool)
      "message carries the unknown name" true
      (contains ~sub:"NoSuchXform" msg)

(* --- optimizer ------------------------------------------------------------ *)

let t_determinism () =
  let k = kernel "gemm" in
  let run () = Search.optimize ~name:"gemm" (search_config k) k.k_build in
  let a = run () and b = run () in
  Alcotest.(check string)
    "two model-only searches find the same chain"
    (X.chain_to_string a.Search.r_chain)
    (X.chain_to_string b.Search.r_chain);
  Alcotest.(check string) "same stop reason" a.Search.r_stop b.Search.r_stop;
  Alcotest.(check int)
    "same number of steps"
    (List.length a.Search.r_steps)
    (List.length b.Search.r_steps)

let t_model_only_never_profiles () =
  let k = kernel "atax" in
  let res = Search.optimize ~name:"atax" (search_config k) k.k_build in
  Alcotest.(check int)
    "model-only search never invokes the profiler" 0 res.Search.r_profile_runs;
  Alcotest.(check (option (float 0.)))
    "no base wall measured" None res.Search.r_base_wall_s

let t_improves_model () =
  let k = kernel "gemm" in
  let res = Search.optimize ~name:"gemm" (search_config k) k.k_build in
  Alcotest.(check bool)
    "found a chain" true
    (List.length res.Search.r_chain > 0);
  Alcotest.(check bool)
    "best modeled time is no worse than base" true
    (res.Search.r_best_model_s <= res.Search.r_base_model_s)

let t_budget () =
  let k = kernel "gemm" in
  let res =
    Search.optimize ~name:"gemm"
      (search_config ~objective:Search.Measured ~budget_s:0. k)
      k.k_build
  in
  Alcotest.(check string) "stops on budget" "budget" res.Search.r_stop;
  Alcotest.(check int) "no profiler runs" 0 res.Search.r_profile_runs;
  Alcotest.(check (list string))
    "empty chain" []
    (List.map (fun (s : X.chain_step) -> s.cs_xform) res.Search.r_chain)

let t_search_log () =
  let k = kernel "gemm" in
  let res = Search.optimize ~name:"gemm" (search_config k) k.k_build in
  List.iter
    (fun (l : Search.step_log) ->
      Alcotest.(check bool)
        "tried >= applied" true
        (l.l_tried >= l.l_applied);
      Alcotest.(check int) "model-only step measured nothing" 0 l.l_measured)
    res.Search.r_steps;
  (* the search log renders as a report timing tree and as JSON *)
  let json = Obs.Json.to_string (Search.to_json res) in
  match Obs.Json.parse json with
  | parsed ->
    Alcotest.(check (option string))
      "objective serialized" (Some "model-only")
      (Option.bind (Obs.Json.member "objective" parsed) Obs.Json.to_string_opt)
  | exception Obs.Json.Parse_error msg ->
    Alcotest.failf "search log JSON does not parse back: %s" msg

let t_crossval name () =
  let k = kernel name in
  let res = Search.optimize ~name (search_config ~max_steps:2 k) k.k_build in
  match Search.crossval ~symbols:k.k_mini k.k_build res.Search.r_chain with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "crossval failed on %s: %s" name msg

let suite =
  [ ("result-based Xform API", `Quick, t_result_api);
    ("registry enumeration is sorted", `Quick, t_registry_sorted);
    ("chain round-trip over the registry", `Quick, t_chain_roundtrip);
    ("chain_of_string rejects malformed lines", `Quick, t_chain_malformed);
    ("apply_chain reports unknown names", `Quick, t_chain_unknown_name);
    ("model-only search is deterministic", `Quick, t_determinism);
    ("model-only search never profiles", `Quick, t_model_only_never_profiles);
    ("search improves the modeled time", `Quick, t_improves_model);
    ("zero budget stops the search", `Quick, t_budget);
    ("search log is consistent and serializes", `Quick, t_search_log);
    ("auto-optimized gemm crossvalidates", `Quick, t_crossval "gemm");
    ("auto-optimized atax crossvalidates", `Quick, t_crossval "atax");
    ("auto-optimized mvt crossvalidates", `Quick, t_crossval "mvt") ]
