(* Serialization round-trip tests: save/load must preserve structure AND
   behaviour (interpreter results identical). *)

module T = Tasklang.Types
open Sdfg_ir
open Interp

let roundtrip g = Serialize.of_string (Serialize.to_string g)

let test_structural_roundtrip () =
  List.iter
    (fun (name, build) ->
      let g = build () in
      let g' = roundtrip g in
      Validate.check g';
      Alcotest.(check int) (name ^ ": states") (Sdfg.num_states g)
        (Sdfg.num_states g');
      Alcotest.(check int)
        (name ^ ": containers")
        (List.length (Sdfg.descs g))
        (List.length (Sdfg.descs g'));
      Alcotest.(check int)
        (name ^ ": transitions")
        (List.length (Sdfg.transitions g))
        (List.length (Sdfg.transitions g'));
      List.iter2
        (fun st st' ->
          Alcotest.(check int)
            (name ^ ": nodes of " ^ State.label st)
            (State.num_nodes st) (State.num_nodes st');
          Alcotest.(check int)
            (name ^ ": edges of " ^ State.label st)
            (State.num_edges st) (State.num_edges st'))
        (Sdfg.states g) (Sdfg.states g');
      (* second roundtrip is a fixpoint *)
      Alcotest.(check string)
        (name ^ ": serialization fixpoint")
        (Serialize.to_string g')
        (Serialize.to_string (roundtrip g')))
    [ ("vadd", Fixtures.vector_add);
      ("mapreduce mm", Fixtures.matmul_mapreduce);
      ("laplace", Fixtures.laplace);
      ("fibonacci (streams+consume)", Fixtures.fibonacci);
      ("nested sdfg", Fixtures.nested_loop);
      ("spmv", Fixtures.spmv);
      ("bfs", Workloads.Graphs.bfs) ]

let test_behavioural_roundtrip () =
  let run g =
    let a =
      Tensor.init T.F64 [| 7 |] (fun i -> T.F (cos (float_of_int (List.hd i))))
    in
    let b =
      Tensor.init T.F64 [| 7 |] (fun i -> T.F (float_of_int (List.hd i * 2)))
    in
    let c = Tensor.create T.F64 [| 7 |] in
    ignore
      (Exec.run g ~symbols:[ ("N", 7) ]
         ~args:[ ("A", a); ("B", b); ("C", c) ]);
    Tensor.to_float_list c
  in
  Alcotest.(check (list (float 1e-12)))
    "loaded SDFG computes identically"
    (run (Fixtures.vector_add ()))
    (run (roundtrip (Fixtures.vector_add ())))

let test_transformed_roundtrip () =
  (* transformations survive a save/load cycle (optimization version
     control, §4.2) *)
  let g = Fixtures.matmul_wcr () in
  Transform.Xform.apply_first_exn g
    (Transform.Map_xforms.map_tiling_sized ~tile_sizes:[ 3 ]);
  Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform;
  let g' = roundtrip g in
  Validate.check g';
  let run g =
    let m, n, k = (5, 4, 6) in
    let a = Tensor.init T.F64 [| m; k |] (fun idx -> T.F (float_of_int (List.fold_left ( + ) 1 idx))) in
    let b = Tensor.init T.F64 [| k; n |] (fun idx -> T.F (float_of_int (List.fold_left ( + ) 2 idx))) in
    let c = Tensor.create T.F64 [| m; n |] in
    ignore
      (Exec.run g
         ~symbols:[ ("M", m); ("N", n); ("K", k) ]
         ~args:[ ("A", a); ("B", b); ("C", c) ]);
    Tensor.to_float_list c
  in
  Alcotest.(check (list (float 1e-9))) "transformed+loaded identical" (run g)
    (run g')

let test_parse_errors () =
  let fails s =
    match Serialize.of_string s with
    | exception Serialize.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error for %S" s
  in
  fails "";
  fails "(sdfg)";
  fails "(sdfg \"x\" (symbols) (containers) (states) (transitions";
  fails "(not-an-sdfg)"

let suite =
  [ ("structural roundtrip", `Quick, test_structural_roundtrip);
    ("behavioural roundtrip", `Quick, test_behavioural_roundtrip);
    ("transformed SDFGs roundtrip", `Quick, test_transformed_roundtrip);
    ("parse errors", `Quick, test_parse_errors) ]
