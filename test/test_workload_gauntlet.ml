(* Workload-conformance gauntlet (ISSUE: scenario diversity).

   Every workload in the CFD spectral-element and attention/conv
   families must survive the full pipeline: build → validate (implicit
   in the builders) → execute bit/approx-identically across the
   scaling matrix (domain policy x bulk kernels, as in
   [Test_scaling]) → agree with its sibling variant on shared
   arguments → lower the expected kernel kinds with the expected
   stable fallback reasons → survive a model-only [Opt.Search] pass
   whose committed chain crossvalidates against the reference engine.

   Approx comparison is sanctioned exactly where {!Races} issues a
   float-accumulate verdict (the CFD scatter's dynamic WCR window):
   domain privatization may legally reorder those reductions.  The
   attention/conv contractions WCR-write disjointly along the chunked
   map dimension, so they stay bit-exact across the whole matrix —
   the battery derives the comparison mode from the analysis rather
   than hard-coding it.  Cross-variant comparisons are always approx
   (different algorithms order the float sums differently). *)

module R = Obs.Report
module Search = Opt.Search
open Interp

let check_bits = Test_parallel.check_bits
let check_approx = Test_parallel.check_approx
let float_accumulate = Test_parallel.float_accumulate

(* --- the case table ------------------------------------------------------ *)

type case = {
  w_name : string;
  w_build : unit -> Sdfg_ir.Sdfg.t;
  w_symbols : (string * int) list;
  w_args : unit -> (string * Tensor.t) list;  (* fresh tensors per call *)
}

let cfd_batched =
  { w_name = "cfd-batched";
    w_build = Workloads.Cfd.batched;
    w_symbols = Workloads.Cfd.mini;
    w_args = (fun () -> Workloads.Cfd.args Workloads.Cfd.mini) }

let cfd_naive =
  { w_name = "cfd-naive";
    w_build = Workloads.Cfd.naive;
    w_symbols = Workloads.Cfd.mini;
    w_args = (fun () -> Workloads.Cfd.args Workloads.Cfd.mini) }

let attention_base =
  { w_name = "attention";
    w_build = Workloads.Attention.base;
    w_symbols = Workloads.Attention.attention_mini;
    w_args =
      (fun () ->
        Workloads.Attention.attention_args Workloads.Attention.attention_mini)
  }

let attention_tiled =
  { attention_base with
    w_name = "attention-tiled";
    w_build = Workloads.Attention.tiled }

let conv_im2col =
  { w_name = "conv-im2col";
    w_build = Workloads.Attention.conv_im2col;
    w_symbols = Workloads.Attention.conv_mini;
    w_args =
      (fun () -> Workloads.Attention.conv_args Workloads.Attention.conv_mini)
  }

let conv_direct =
  { conv_im2col with
    w_name = "conv-direct";
    w_build = Workloads.Attention.conv_direct }

let cases =
  [ cfd_batched; cfd_naive; attention_base; attention_tiled; conv_im2col;
    conv_direct ]

(* Variant pairs that must agree on shared arguments: (transformed,
   baseline).  Both members of a pair take the same container set. *)
let variant_pairs =
  [ (cfd_batched, cfd_naive);
    (attention_tiled, attention_base);
    (conv_im2col, conv_direct) ]

(* --- scaling matrix (shared with Test_scaling) --------------------------- *)

let test_matrix (c : case) () =
  let approx = float_accumulate (c.w_build ()) in
  Test_scaling.battery c.w_name ~approx (fun policy kernels ->
      let g = c.w_build () in
      let args = c.w_args () in
      let r =
        Exec.run g
          ~config:(Test_scaling.config ~kernels policy)
          ~symbols:c.w_symbols ~args
      in
      (args, r))

(* --- reference engine vs compiled engine --------------------------------- *)

(* At one forced domain the compiled engine — kernels on or off — must
   reproduce the reference engine bitwise, bulk [contract] kernels and
   closure-path indirection included. *)
let test_engines (c : case) () =
  let run config =
    let g = c.w_build () in
    let args = c.w_args () in
    ignore (Exec.run g ~config ~symbols:c.w_symbols ~args);
    args
  in
  let ref_args = run Exec.Config.(default |> with_domains 1) in
  List.iter
    (fun kernels ->
      check_bits
        (Fmt.str "%s: compiled (kernels %s) vs reference" c.w_name
           (if kernels then "on" else "off"))
        ref_args
        (run (Test_scaling.config ~kernels (Test_scaling.Forced 1))))
    [ false; true ]

(* --- cross-variant agreement --------------------------------------------- *)

let test_variants ((opt : case), (base : case)) () =
  let run (c : case) =
    let g = c.w_build () in
    let args = c.w_args () in
    ignore
      (Exec.run g
         ~config:(Test_scaling.config ~kernels:true (Test_scaling.Forced 1))
         ~symbols:c.w_symbols ~args);
    args
  in
  check_approx (Fmt.str "%s vs %s" opt.w_name base.w_name) (run base) (run opt)

(* --- kernel coverage: bulk kinds and stable fallback reasons ------------- *)

let tally tag expect got =
  List.iter
    (fun (key, n) ->
      Alcotest.(check int)
        (Fmt.str "%s: %s tally" tag key)
        n
        (try List.assoc key got with Not_found -> 0))
    expect

let test_coverage () =
  (* cfd-batched: both contractions lower as bulk [contract]; the
     gather and scatter maps are the canonical indirection fallback. *)
  let kmaps, kfalls =
    Test_kernels.coverage Workloads.Cfd.batched Workloads.Cfd.mini
  in
  tally "cfd-batched kernels" [ ("contract", 2) ] kmaps;
  tally "cfd-batched fallbacks" [ ("non-affine-indirect", 2) ] kfalls;
  (* cfd-naive: the fused per-element body subscripts [uin]/[o] through
     the connectivity connector — indirection, not its surface shape. *)
  let _, kfalls =
    Test_kernels.coverage Workloads.Cfd.naive Workloads.Cfd.mini
  in
  tally "cfd-naive fallbacks" [ ("non-affine-indirect", 1) ] kfalls;
  (* attention: both matmuls contract in bulk; softmax stages are
     elementwise/expr kernels or reductions, never indirection. *)
  let kmaps, kfalls =
    Test_kernels.coverage Workloads.Attention.base
      Workloads.Attention.attention_mini
  in
  tally "attention kernels" [ ("contract", 2) ] kmaps;
  tally "attention fallbacks" [ ("non-affine-indirect", 0) ] kfalls;
  (* conv-im2col: the column gather is indirect, the GEMM contracts. *)
  let kmaps, kfalls =
    Test_kernels.coverage Workloads.Attention.conv_im2col
      Workloads.Attention.conv_mini
  in
  tally "conv-im2col kernels" [ ("contract", 1) ] kmaps;
  tally "conv-im2col fallbacks" [ ("non-affine-indirect", 1) ] kfalls;
  (* conv-direct: fully affine — everything lowers, nothing falls back. *)
  let kmaps, kfalls =
    Test_kernels.coverage Workloads.Attention.conv_direct
      Workloads.Attention.conv_mini
  in
  tally "conv-direct kernels" [ ("contract", 1) ] kmaps;
  Alcotest.(check (list (pair string int)))
    "conv-direct has no fallbacks" [] kfalls

(* --- optimizer leg: model-only search + chain crossval ------------------- *)

let test_optimize (c : case) () =
  let cfg =
    Search.config ~target:Machine.Cost.Tcpu ~symbols:c.w_symbols
      ~objective:Search.Model_only ~beam:2 ~max_steps:3 ()
  in
  let res = Search.optimize ~name:c.w_name cfg c.w_build in
  if res.Search.r_best_model_s > res.Search.r_base_model_s then
    Alcotest.failf "%s: search regressed the model (%.3g -> %.3g)" c.w_name
      res.Search.r_base_model_s res.Search.r_best_model_s;
  match Search.crossval ~symbols:c.w_symbols c.w_build res.Search.r_chain with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: chain crossval failed: %s" c.w_name e

let suite =
  List.map
    (fun c ->
      ( Fmt.str "%s: policy x kernels matrix conforms" c.w_name,
        `Quick, test_matrix c ))
    cases
  @ List.map
      (fun c ->
        ( Fmt.str "%s: compiled engine matches reference bitwise" c.w_name,
          `Quick, test_engines c ))
      cases
  @ List.map
      (fun ((o, b) as pr) ->
        ( Fmt.str "%s agrees with %s on shared arguments" o.w_name b.w_name,
          `Quick, test_variants pr ))
      variant_pairs
  @ [ ( "kernel coverage: contract kinds and indirection fallbacks",
        `Quick, test_coverage ) ]
  @ List.map
      (fun c ->
        ( Fmt.str "%s: model-only search chain crossvalidates" c.w_name,
          `Quick, test_optimize c ))
      cases
