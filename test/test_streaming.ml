(* Streaming execution (ISSUE: stream channels + consume-scope
   workers).

   Three layers under test: the bounded channel primitive
   ({!Interp.Stream}), the pipeline verdict
   ({!Analysis.Races.analyze_pipeline}), and the end-to-end contract of
   {!Interp.Exec.Instance.run_streaming} — chunked feeding must
   reproduce the batch baseline ([run ~stream_args] + [stream_contents])
   bit-for-bit on both engines, whether the graph pipelines or degrades
   to a single batch run, and no channel may ever hold more elements
   than its capacity. *)

module T = Tasklang.Types
module R = Obs.Report
module Races = Analysis.Races
module Stream = Interp.Stream
module I = Interp.Exec.Instance
open Sdfg_ir
open Interp

let domains =
  match Sys.getenv_opt "SDFG_DOMAINS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 2)
  | None -> 2

(* --- the channel primitive --------------------------------------------- *)

let test_channel_fifo () =
  let c = Stream.create ~name:"c" ~capacity:8 () in
  for i = 0 to 5 do
    Stream.push c i
  done;
  Alcotest.(check int) "length" 6 (Stream.length c);
  Stream.close c;
  let rec drain acc =
    match Stream.pop c with Some v -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2; 3; 4; 5 ] (drain []);
  Alcotest.(check (option int)) "EOS is sticky" None (Stream.pop c)

let test_channel_zero_trip () =
  let c = Stream.create ~capacity:4 () in
  Alcotest.(check (option int)) "try_pop empty" None (Stream.try_pop c);
  Stream.close c;
  Alcotest.(check (option int)) "pop on closed empty" None (Stream.pop c);
  let s = Stream.stats c in
  Alcotest.(check int) "no pushes" 0 s.Stream.ch_pushes;
  Alcotest.(check int) "no pops" 0 s.Stream.ch_pops;
  Alcotest.(check int) "hwm zero" 0 s.Stream.ch_depth_hwm

let test_channel_capacity_clamp () =
  let c = Stream.create ~capacity:(-3) () in
  Alcotest.(check int) "clamped to 1" 1 (Stream.capacity c)

let test_channel_closed_push () =
  let c = Stream.create ~name:"dead" ~capacity:2 () in
  Stream.close c;
  Stream.close c (* idempotent *);
  Alcotest.check_raises "push after close" (Stream.Closed "dead") (fun () ->
      Stream.push c 1)

(* A producer on another domain blocks on the full channel until the
   consumer drains; everything pushed arrives in order and the depth
   high-water mark respects the capacity. *)
let test_channel_backpressure () =
  let c = Stream.create ~capacity:2 () in
  let n = 100 in
  let prod =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Stream.push c i
        done;
        Stream.close c)
  in
  let rec drain acc =
    match Stream.pop c with Some v -> drain (v :: acc) | None -> List.rev acc
  in
  let got = drain [] in
  Domain.join prod;
  Alcotest.(check int) "all elements" n (List.length got);
  Alcotest.(check (list int)) "in order" (List.init n Fun.id) got;
  let s = Stream.stats c in
  Alcotest.(check bool) "hwm within capacity" true (s.Stream.ch_depth_hwm <= 2);
  Alcotest.(check int) "pushes" n s.Stream.ch_pushes;
  Alcotest.(check int) "pops" n s.Stream.ch_pops

(* A consumer blocked on an empty channel wakes on close and reports
   EOS rather than hanging. *)
let test_channel_close_wakes_consumer () =
  let c = Stream.create ~capacity:4 () in
  let cons = Domain.spawn (fun () -> Stream.pop c) in
  Unix.sleepf 0.01;
  Stream.close c;
  Alcotest.(check (option int)) "woken with EOS" None (Domain.join cons)

(* --- the pipeline verdict ---------------------------------------------- *)

let verdict g =
  Races.pipeline_code (Races.analyze_pipeline g (Sdfg.start_state g))

let stage_streams g =
  match Races.analyze_pipeline g (Sdfg.start_state g) with
  | Races.Pipeline stages ->
    List.map (fun (s : Races.pipeline_stage) -> s.pl_stream) stages
  | Races.No_pipeline _ -> []

let test_verdict_workloads () =
  Alcotest.(check string) "window" "pipeline"
    (verdict (Workloads.Streaming.query_window ()));
  Alcotest.(check (list string)) "window stages" [ "in_q"; "mid" ]
    (stage_streams (Workloads.Streaming.query_window ()));
  Alcotest.(check string) "filter" "pipeline"
    (verdict (Workloads.Streaming.query_filter ()));
  Alcotest.(check (list string)) "topk stages (batch order)"
    [ "in_q"; "c1"; "c2"; "c3" ]
    (stage_streams (Workloads.Streaming.query_topk ()))

let test_verdict_rejections () =
  (* fibonacci keeps non-access work (its seed tasklet) outside the
     consume scope, which already denies the stage decomposition *)
  Alcotest.(check string) "fibonacci" "non-stream-compute"
    (verdict (Fixtures.fibonacci ()));
  (* a plain map graph has no consume scope at all *)
  Alcotest.(check string) "matmul has no stages" "no-consume"
    (verdict (Workloads.Kernels.matmul ()))

(* --- chunked streaming vs the batch baseline --------------------------- *)

let config ?(engine = Plan.reference) ?(chunk = 5) ?capacity () =
  let c =
    Exec.Config.(
      default |> with_engine engine |> with_domains domains
      |> with_stream_chunk chunk)
  in
  match capacity with
  | None -> c
  | Some n -> Exec.Config.with_stream_capacity n c

let feed n = Workloads.Streaming.sample_values n 7

let value_bits (v : T.value) =
  match v with
  | T.F f -> Int64.to_string (Int64.bits_of_float f)
  | T.I n -> string_of_int n
  | T.B b -> string_of_bool b

let check_values tag want got =
  Alcotest.(check (list string))
    tag
    (List.map value_bits (Array.to_list want))
    (List.map value_bits (Array.to_list got))

let check_tensors tag want got =
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      Alcotest.(check string) (tag ^ ": arg order") n1 n2;
      Alcotest.(check (list int64))
        (Fmt.str "%s: %S byte-identical" tag n1)
        (Test_crossval.tensor_bits t1) (Test_crossval.tensor_bits t2))
    want got

(* Run one workload chunked and batch under [config]; check the output
   stream and every output tensor agree bitwise, and return the chunked
   run's report for metric assertions. *)
let crossval cfg (name, mk, input, output, syms) =
  let g = mk () in
  let values = feed 83 in
  let batch_args = Interp.Profile.make_args ~symbols:syms g in
  let batch = I.create ~config:cfg ~symbols:syms g in
  ignore (I.run ~args:batch_args ~stream_args:[ (input, values) ] batch);
  let batch_out =
    match output with None -> [||] | Some o -> I.stream_contents batch o
  in
  let args = Interp.Profile.make_args ~symbols:syms g in
  let inst = I.create ~config:cfg ~symbols:syms g in
  let got = ref [] in
  let rep =
    I.run_streaming ~args ~input ?output
      ~sink:(fun c -> got := c :: !got)
      ~source:(Workloads.Streaming.chunked_source values 5)
      inst
  in
  check_values (name ^ ": output stream") batch_out
    (Array.concat (List.rev !got));
  check_tensors (name ^ ": tensors") batch_args args;
  rep

let each_workload f = List.iter f Workloads.Streaming.all

let test_crossval_reference () =
  each_workload (fun w -> ignore (crossval (config ()) w))

let test_crossval_compiled () =
  each_workload (fun w ->
      ignore (crossval (config ~engine:Plan.compiled ()) w))

let test_crossval_chunk_one () =
  each_workload (fun w -> ignore (crossval (config ~chunk:1 ()) w))

(* The pipelined run surfaces per-channel and per-worker metrics, and
   backpressure keeps every channel within its capacity — including
   under a pathological capacity override of a single slot. *)
let test_metrics_and_backpressure () =
  each_workload (fun ((name, _, _, _, _) as w) ->
      List.iter
        (fun capacity ->
          let cfg = config ?capacity ~engine:Plan.compiled () in
          let rep = crossval cfg w in
          match rep.R.r_parallel with
          | None -> Alcotest.failf "%s: no parallel section" name
          | Some p ->
            Alcotest.(check bool)
              (name ^ ": has workers") true
              (p.R.par_workers <> []);
            Alcotest.(check bool)
              (name ^ ": has channels") true
              (p.R.par_channels <> []);
            List.iter
              (fun (c : R.channel_stat) ->
                if c.pc_depth_hwm > c.pc_capacity then
                  Alcotest.failf "%s: channel %s hwm %d > capacity %d" name
                    c.pc_name c.pc_depth_hwm c.pc_capacity;
                match capacity with
                | Some n ->
                  Alcotest.(check int)
                    (name ^ ": capacity override") n c.pc_capacity
                | None -> ())
              p.R.par_channels)
        [ None; Some 1 ])

(* Appending an unrelated empty state denies the single-state pipeline
   precondition, so run_streaming degrades to one batch run — with
   identical results and no channel metrics. *)
let test_degrade_path () =
  let g = Workloads.Streaming.query_filter () in
  let main = List.hd (Sdfg.states g) in
  let tail = Sdfg.add_state g ~label:"tail" () in
  ignore
    (Sdfg.add_transition g ~src:(State.id main) ~dst:(State.id tail) ());
  Alcotest.(check int) "two states" 2 (List.length (Sdfg.states g));
  let values = feed 40 in
  let batch = I.create ~config:(config ()) ~symbols:[ ("P", 4) ] g in
  ignore (I.run ~stream_args:[ ("in_q", values) ] batch);
  let inst = I.create ~config:(config ()) ~symbols:[ ("P", 4) ] g in
  let got = ref [] in
  let rep =
    I.run_streaming ~input:"in_q" ~output:"out_q"
      ~sink:(fun c -> got := c :: !got)
      ~source:(Workloads.Streaming.chunked_source values 5)
      inst
  in
  check_values "degraded output = batch"
    (I.stream_contents batch "out_q")
    (Array.concat (List.rev !got));
  match rep.R.r_parallel with
  | Some p when p.R.par_channels <> [] ->
    Alcotest.fail "degraded run reported channels"
  | _ -> ()

(* Counters: the chunked pipelined run must report the same stream and
   iteration totals as the batch baseline (drain pops are uncounted on
   both paths). *)
let test_counter_parity () =
  each_workload (fun (name, mk, input, output, syms) ->
      let g = mk () in
      let values = feed 60 in
      let batch = I.create ~config:(config ()) ~symbols:syms g in
      let rb = I.run ~stream_args:[ (input, values) ] batch in
      let inst = I.create ~config:(config ()) ~symbols:syms g in
      let rs =
        I.run_streaming ~input ?output
          ~source:(Workloads.Streaming.chunked_source values 5)
          inst
      in
      Alcotest.(check (list int))
        (name ^ ": counters match batch")
        (Test_crossval.counter_list rb.R.r_counters)
        (Test_crossval.counter_list rs.R.r_counters))

let suite =
  [ Alcotest.test_case "channel fifo" `Quick test_channel_fifo;
    Alcotest.test_case "channel zero trip" `Quick test_channel_zero_trip;
    Alcotest.test_case "channel capacity clamp" `Quick
      test_channel_capacity_clamp;
    Alcotest.test_case "channel closed push" `Quick test_channel_closed_push;
    Alcotest.test_case "channel backpressure" `Quick
      test_channel_backpressure;
    Alcotest.test_case "channel close wakes consumer" `Quick
      test_channel_close_wakes_consumer;
    Alcotest.test_case "pipeline verdict workloads" `Quick
      test_verdict_workloads;
    Alcotest.test_case "pipeline verdict rejections" `Quick
      test_verdict_rejections;
    Alcotest.test_case "chunked = batch (reference)" `Quick
      test_crossval_reference;
    Alcotest.test_case "chunked = batch (compiled)" `Quick
      test_crossval_compiled;
    Alcotest.test_case "chunked = batch (chunk 1)" `Quick
      test_crossval_chunk_one;
    Alcotest.test_case "metrics and backpressure" `Quick
      test_metrics_and_backpressure;
    Alcotest.test_case "degrade path" `Quick test_degrade_path;
    Alcotest.test_case "counter parity" `Quick test_counter_parity ]
