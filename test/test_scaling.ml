(* Scaling-conformance battery (ISSUE: make multicore pay).

   The contract under test: for every Polybench kernel, engine workload
   and streaming workload, the compiled engine produces bit-identical
   outputs and identical counter totals across the full execution
   matrix — domain policy {forced 1, forced 2, forced 4, predictive cap
   4} x bulk kernels {on, off}.  The one sanctioned relaxation is the
   float WCR-accumulate path, where private per-domain accumulators
   legally reorder a float reduction: those workloads are approx-equal
   to sequential (and still counter-identical).  On top of value
   conformance, every run's parallel report section must be internally
   consistent: the policy string matches the configuration,
   [par_forced_seq] equals the forced decisions' invocation total, and
   each per-map prediction lies in [1, cap] with forced maps pinned to
   1 domain. *)

module R = Obs.Report
open Interp

let counter_list = Test_crossval.counter_list
let check_bits = Test_parallel.check_bits
let check_approx = Test_parallel.check_approx
let float_accumulate = Test_parallel.float_accumulate

(* --- the execution matrix ---------------------------------------------- *)

type policy = Forced of int | Auto of int  (* predictive, capped *)

let policy_label = function
  | Forced d -> Fmt.str "fixed-%d" d
  | Auto cap -> Fmt.str "auto-%d" cap

let cap_of = function Forced d -> d | Auto cap -> cap

let config ~kernels policy =
  let base =
    Exec.Config.(
      default |> with_engine Plan.compiled |> with_kernels kernels)
  in
  match policy with
  | Forced d -> Exec.Config.with_domains d base
  | Auto cap -> Exec.Config.with_auto_domains ~cap base

let policies = [ Forced 1; Forced 2; Forced 4; Auto 4 ]

(* baseline first: forced 1 domain, kernels off *)
let matrix =
  List.concat_map (fun k -> List.map (fun p -> (p, k)) policies)
    [ false; true ]

(* --- report-consistency assertions -------------------------------------- *)

let check_report tag policy (r : R.t) =
  match r.R.r_parallel with
  | None -> ()  (* runs with nothing to report may omit the section *)
  | Some p ->
    (match policy with
    | Forced d when d > 1 ->
      Alcotest.(check string) (tag ^ ": policy string") "fixed"
        p.R.par_policy
    | Forced _ -> ()
    | Auto _ ->
      Alcotest.(check string) (tag ^ ": policy string") "predictive"
        p.R.par_policy);
    let forced_invocations =
      List.fold_left
        (fun acc pm ->
          if pm.R.pm_forced then acc + pm.R.pm_invocations else acc)
        0 p.R.par_decisions
    in
    Alcotest.(check int)
      (tag ^ ": forced_seq equals forced decisions' invocations")
      forced_invocations p.R.par_forced_seq;
    List.iter
      (fun pm ->
        if pm.R.pm_domains < 1 || pm.R.pm_domains > cap_of policy then
          Alcotest.failf "%s: map %s predicted_domains %d outside [1,%d]"
            tag pm.R.pm_map pm.R.pm_domains (cap_of policy);
        if pm.R.pm_forced && pm.R.pm_domains <> 1 then
          Alcotest.failf "%s: forced map %s not pinned to 1 domain (%d)"
            tag pm.R.pm_map pm.R.pm_domains;
        if pm.R.pm_invocations < 0 || pm.R.pm_trips < 0 then
          Alcotest.failf "%s: map %s has negative tallies" tag pm.R.pm_map)
      p.R.par_decisions

(* Shared battery body: [run] executes one configuration and returns
   (output tensors, report); outputs must match the baseline bitwise
   (approx for float accumulators), counters exactly. *)
let battery name ~approx run =
  let base_args, base_r = run (Forced 1) false in
  List.iter
    (fun (policy, kernels) ->
      let tag =
        Fmt.str "%s [%s, kernels %s]" name (policy_label policy)
          (if kernels then "on" else "off")
      in
      let args, r = run policy kernels in
      Alcotest.(check (list int))
        (tag ^ ": counter totals")
        (counter_list base_r.R.r_counters)
        (counter_list r.R.r_counters);
      if approx then check_approx tag base_args args
      else check_bits tag base_args args;
      check_report tag policy r)
    matrix

(* --- every Polybench kernel --------------------------------------------- *)

let test_polybench name () =
  let k = Workloads.Polybench.find name in
  let approx = float_accumulate (k.Workloads.Polybench.k_build ()) in
  battery name ~approx (fun policy kernels ->
      let g = k.Workloads.Polybench.k_build () in
      let args = Test_polybench.alloc_args g k.Workloads.Polybench.k_mini in
      let r =
        Exec.run g ~config:(config ~kernels policy)
          ~symbols:k.Workloads.Polybench.k_mini ~args
      in
      (args, r))

(* --- every engine workload ---------------------------------------------- *)

let engine_cases =
  [ ("matmul", Workloads.Kernels.matmul,
     [ ("M", 24); ("N", 20); ("K", 16) ]);
    ("jacobi", Workloads.Kernels.jacobi, [ ("N", 32); ("T", 4) ]);
    ("histogram", Workloads.Kernels.histogram, [ ("H", 24); ("W", 24) ]);
    ("copy", Workloads.Kernels.copy, [ ("N", 512) ]);
    ("eadd", Workloads.Kernels.eadd, [ ("N", 512) ]);
    ("axpy", Workloads.Kernels.axpy, [ ("N", 512) ]) ]

let test_engine_workload (name, build, symbols) () =
  let approx = float_accumulate (build ()) in
  battery name ~approx (fun policy kernels ->
      let g = build () in
      let args = Profile.make_args ~symbols g in
      let r = Exec.run g ~config:(config ~kernels policy) ~symbols ~args in
      (args, r))

(* --- streaming workloads (lighter sweep: kernels stay on) ---------------- *)

let streaming_config policy =
  Exec.Config.with_stream_chunk 5 (config ~kernels:true policy)

let value_bits (v : Tasklang.Types.value) =
  match v with
  | Tasklang.Types.F f -> Int64.to_string (Int64.bits_of_float f)
  | Tasklang.Types.I n -> string_of_int n
  | Tasklang.Types.B b -> string_of_bool b

let run_streaming policy (_, mk, input, output, syms) =
  let g = mk () in
  let values = Workloads.Streaming.sample_values 83 7 in
  let args = Profile.make_args ~symbols:syms g in
  let inst = Exec.Instance.create ~config:(streaming_config policy) ~symbols:syms g in
  let got = ref [] in
  let rep =
    Exec.Instance.run_streaming ~args ~input ?output
      ~sink:(fun c -> got := c :: !got)
      ~source:(Workloads.Streaming.chunked_source values 5)
      inst
  in
  (Array.concat (List.rev !got), args, rep)

let test_streaming_workload ((name, _, _, _, _) as w) () =
  let base_out, base_args, base_r = run_streaming (Forced 1) w in
  List.iter
    (fun policy ->
      let tag = Fmt.str "%s [%s]" name (policy_label policy) in
      let out, args, r = run_streaming policy w in
      Alcotest.(check (list string))
        (tag ^ ": output stream")
        (List.map value_bits (Array.to_list base_out))
        (List.map value_bits (Array.to_list out));
      check_bits tag base_args args;
      Alcotest.(check (list int))
        (tag ^ ": counter totals")
        (counter_list base_r.R.r_counters)
        (counter_list r.R.r_counters);
      check_report tag policy r)
    [ Forced 2; Forced 4; Auto 4 ]

let suite =
  List.map
    (fun name ->
      ( Fmt.str "polybench %s: policy x kernels matrix conforms" name,
        `Quick, test_polybench name ))
    Workloads.Polybench.names
  @ List.map
      (fun ((name, _, _) as c) ->
        ( Fmt.str "engine %s: policy x kernels matrix conforms" name,
          `Quick, test_engine_workload c ))
      engine_cases
  @ List.map
      (fun ((name, _, _, _, _) as w) ->
        ( Fmt.str "streaming %s: policies conform" name, `Quick,
          test_streaming_workload w ))
      Workloads.Streaming.all
