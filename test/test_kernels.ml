(* Engine v2: bulk strided kernels for affine map bodies.

   Guarantees under test:
   - recognition: the engines workloads lower to the expected kernel
     kinds, recorded in the plan coverage report, and unsupported bodies
     fall back to the closure path with a stable reason code;
   - equivalence: kernel and closure paths produce bit-identical output
     tensors and identical counter totals at 1, 2 and 4 domains, on
     every Polybench kernel, every fixture graph and the fuzz corpus;
   - error behavior: a launch whose bounds pre-check fails defers to the
     closure nest, so both paths raise the same error with the same
     partial effects;
   - the Tensor primitives behind the kernels (fill / scale / axpy)
     handle dense and strided views and reject shape mismatches. *)

module T = Tasklang.Types
module R = Obs.Report
module E = Symbolic.Expr
module S = Symbolic.Subset
open Sdfg_ir
open Builder
open Interp

let tensor_bits = Test_crossval.tensor_bits
let counter_list = Test_crossval.counter_list

(* Compiled engine at an explicit domain count, kernels on/off. *)
let compiled_cfg ?(kernels = true) ~domains () =
  Exec.Config.(
    default |> with_engine Plan.compiled |> with_kernels kernels
    |> with_domains domains)

let check_bits tag a b =
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      Alcotest.(check string) (tag ^ ": argument order") n1 n2;
      Alcotest.(check (list int64))
        (Fmt.str "%s: %S byte-identical" tag n1)
        (tensor_bits t1) (tensor_bits t2))
    a b

(* --- Tensor primitives --------------------------------------------------- *)

let floats t = Tensor.to_float_list t

let test_tensor_fill () =
  let t = Tensor.create T.F64 [| 2; 4 |] in
  Tensor.fill t (T.F 3.5);
  Alcotest.(check (list (float 0.)))
    "dense fill" (List.init 8 (fun _ -> 3.5)) (floats t);
  (* strided view: every other column of row 1 *)
  let v = Tensor.view t ~starts:[| 1; 0 |] ~counts:[| 1; 2 |] ~steps:[| 1; 2 |] in
  Tensor.fill v (T.F 9.);
  Alcotest.(check (list (float 0.)))
    "strided fill hits only the view"
    [ 3.5; 3.5; 3.5; 3.5; 9.; 3.5; 9.; 3.5 ]
    (floats t);
  (* int buffer coerces the value *)
  let ti = Tensor.create T.I64 [| 3 |] in
  Tensor.fill ti (T.I 7);
  Alcotest.(check (list (float 0.))) "int fill" [ 7.; 7.; 7. ] (floats ti)

let test_tensor_scale () =
  let t =
    Tensor.init T.F64 [| 5 |] (function [ i ] -> T.F (float_of_int i) | _ -> T.F 0.)
  in
  Tensor.scale t ~alpha:(T.F 2.);
  Alcotest.(check (list (float 0.)))
    "dense scale" [ 0.; 2.; 4.; 6.; 8. ] (floats t);
  let v = Tensor.view t ~starts:[| 1 |] ~counts:[| 2 |] ~steps:[| 2 |] in
  Tensor.scale v ~alpha:(T.F 10.);
  Alcotest.(check (list (float 0.)))
    "strided scale" [ 0.; 20.; 4.; 60.; 8. ] (floats t)

let test_tensor_axpy () =
  let x =
    Tensor.init T.F64 [| 4 |]
      (function [ i ] -> T.F (float_of_int (i + 1)) | _ -> T.F 0.)
  in
  let y = Tensor.init T.F64 [| 4 |] (fun _ -> T.F 1.) in
  Tensor.axpy ~alpha:(T.F 2.) ~x ~y;
  Alcotest.(check (list (float 0.)))
    "dense axpy" [ 3.; 5.; 7.; 9. ] (floats y);
  (* strided views over a shared base *)
  let base = Tensor.create T.F64 [| 6 |] in
  Tensor.fill base (T.F 1.);
  let even =
    Tensor.view base ~starts:[| 0 |] ~counts:[| 3 |] ~steps:[| 2 |]
  in
  let odd = Tensor.view base ~starts:[| 1 |] ~counts:[| 3 |] ~steps:[| 2 |] in
  Tensor.axpy ~alpha:(T.F 5.) ~x:even ~y:odd;
  Alcotest.(check (list (float 0.)))
    "strided axpy" [ 1.; 6.; 1.; 6.; 1.; 6. ]
    (floats base);
  match Tensor.axpy ~alpha:(T.F 1.) ~x:(Tensor.create T.F64 [| 3 |]) ~y with
  | exception Tensor.Bounds _ -> ()
  | () -> Alcotest.fail "axpy over mismatched shapes must raise Bounds"

(* --- recognition and coverage -------------------------------------------- *)

let coverage ?(kernels = true) build symbols =
  let g = build () in
  let args = Profile.make_args ~symbols g in
  let r = Exec.run g ~config:(compiled_cfg ~kernels ~domains:1 ()) ~symbols ~args in
  match r.R.r_coverage with
  | None -> Alcotest.fail "compiled run must report coverage"
  | Some c ->
    let sorted l = List.sort compare l in
    (sorted c.R.cov_kernels, sorted c.R.cov_kernel_fallbacks)

let test_recognized_kinds () =
  List.iter
    (fun (name, build, symbols, want_maps, want_falls) ->
      let kmaps, kfalls = coverage build symbols in
      Alcotest.(check (list (pair string int)))
        (name ^ ": lowered kinds") want_maps kmaps;
      Alcotest.(check (list (pair string int)))
        (name ^ ": fallback reasons") want_falls kfalls)
    [ ( "matmul", Workloads.Kernels.matmul,
        [ ("M", 8); ("N", 8); ("K", 8) ],
        [ ("contract", 1); ("fill", 1) ], [] );
      ( "jacobi", Workloads.Kernels.jacobi,
        [ ("N", 16); ("T", 2) ],
        [ ("ssum", 2) ], [] );
      ( "histogram", Workloads.Kernels.histogram,
        [ ("H", 8); ("W", 8) ],
        (* the scatter's computed bin is input-derived indirection *)
        [ ("fill", 1) ], [ ("non-affine-indirect", 1) ] );
      ( "spmv", Workloads.Kernels.spmv,
        (* sizes ≥ 11 so Profile.make_args' mod-11 index values fit *)
        [ ("H", 8); ("W", 16); ("nnz", 16) ],
        (* the CSR row loop bounds and x gather come from connectors *)
        [], [ ("non-affine-indirect", 1) ] );
      ("copy", Workloads.Kernels.copy, [ ("N", 16) ], [ ("copy", 1) ], []);
      ("eadd", Workloads.Kernels.eadd, [ ("N", 16) ], [ ("ebinop", 1) ], []);
      ("axpy", Workloads.Kernels.axpy, [ ("N", 16) ], [ ("axpy", 1) ], []) ]

let test_kernels_disabled () =
  (* ~kernels:false must keep every map on the closure path and record
     neither lowered kinds nor fallback reasons *)
  let kmaps, kfalls =
    coverage ~kernels:false Workloads.Kernels.matmul
      [ ("M", 8); ("N", 8); ("K", 8) ]
  in
  Alcotest.(check (list (pair string int))) "no kernels" [] kmaps;
  Alcotest.(check (list (pair string int))) "no fallbacks" [] kfalls

let test_nonaffine_fallback () =
  (* a quadratic subscript cannot be a strided kernel *)
  let build () =
    let g, st = Build.single_state ~symbols:[ "N" ] "sq" in
    Sdfg.add_array g "X" ~shape:[ E.int 64 ] ~dtype:T.F64;
    ignore
      (Build.mapped_tasklet g st ~name:"w" ~schedule:Defs.Cpu_multicore
         ~params:[ "i" ]
         ~ranges:[ S.range E.zero (E.sub (E.sym "N") E.one) ]
         ~ins:[]
         ~outs:
           [ Build.out_elem "x" "X" [ E.mul (E.sym "i") (E.sym "i") ] ]
         ~code:(`Src "x = 1.0") ());
    Build.finalize g
  in
  let kmaps, kfalls = coverage build [ ("N", 8) ] in
  Alcotest.(check (list (pair string int))) "nothing lowered" [] kmaps;
  Alcotest.(check (list (pair string int)))
    "non-affine reason" [ ("non-affine", 1) ] kfalls

(* --- kernel path == closure path ----------------------------------------- *)

(* Run the compiled engine twice on identical deterministic inputs —
   closure path and kernel path — and require byte-identical outputs and
   identical counter totals.  The kernel executes the same reads and
   writes in the same order as the closure nest, so this holds even for
   float WCR at a fixed domain count. *)
let check_paths_agree tag build symbols args_for ~domains =
  let run kernels =
    let g = build () in
    let args = args_for g in
    let r = Exec.run g ~config:(compiled_cfg ~kernels ~domains ()) ~symbols ~args in
    (args, r)
  in
  let closure_out, closure_r = run false in
  let kernel_out, kernel_r = run true in
  check_bits (Fmt.str "%s at %d domains" tag domains) closure_out kernel_out;
  Alcotest.(check (list int))
    (Fmt.str "%s: counters at %d domains" tag domains)
    (counter_list closure_r.R.r_counters)
    (counter_list kernel_r.R.r_counters)

let test_polybench_paths name () =
  let k = Workloads.Polybench.find name in
  List.iter
    (fun domains ->
      check_paths_agree name k.Workloads.Polybench.k_build
        k.Workloads.Polybench.k_mini
        (fun g -> Test_polybench.alloc_args g k.Workloads.Polybench.k_mini)
        ~domains)
    [ 1; 2; 4 ]

let test_fixture_paths (name, build, symbols, args) () =
  List.iter
    (fun domains ->
      check_paths_agree name build symbols (fun _ -> args ()) ~domains)
    [ 1; 2; 4 ]

let test_engines_workload_paths () =
  List.iter
    (fun (name, build, symbols) ->
      List.iter
        (fun domains ->
          check_paths_agree name build symbols
            (fun g -> Profile.make_args ~symbols g)
            ~domains)
        [ 1; 2; 4 ])
    [ ("matmul", Workloads.Kernels.matmul, [ ("M", 8); ("N", 8); ("K", 8) ]);
      ("jacobi", Workloads.Kernels.jacobi, [ ("N", 16); ("T", 2) ]);
      ("histogram", Workloads.Kernels.histogram, [ ("H", 16); ("W", 16) ]);
      ("copy", Workloads.Kernels.copy, [ ("N", 33) ]);
      ("eadd", Workloads.Kernels.eadd, [ ("N", 33) ]);
      ("axpy", Workloads.Kernels.axpy, [ ("N", 33) ]) ]

let test_corpus_kernels () =
  List.iter
    (fun path ->
      let g = Serialize.load path in
      match Fuzz.Oracle.check Fuzz.Oracle.Kernel_crossval g with
      | Fuzz.Oracle.Fail m -> Alcotest.failf "%s: %s" path m
      | Fuzz.Oracle.Pass _ | Fuzz.Oracle.Skip _ -> ())
    (Test_fuzz.corpus_files ())

(* --- error behavior ------------------------------------------------------ *)

(* Map range runs to N-1 over an 8-element array: with N = 9 the bounds
   pre-check fails, the kernel defers to the closure nest, and both paths
   must raise the same located error after the same partial writes. *)
let oob_graph () =
  let g, st = Build.single_state ~symbols:[ "N" ] "oob" in
  Sdfg.add_array g "X" ~shape:[ E.int 8 ] ~dtype:T.F64;
  ignore
    (Build.mapped_tasklet g st ~name:"w" ~schedule:Defs.Cpu_multicore
       ~params:[ "i" ]
       ~ranges:[ S.range E.zero (E.sub (E.sym "N") E.one) ]
       ~ins:[]
       ~outs:[ Build.out_elem "x" "X" [ E.sym "i" ] ]
       ~code:(`Src "x = 1.0") ());
  Build.finalize g

let test_oob_same_error () =
  let run kernels =
    let x = Tensor.init T.F64 [| 8 |] (fun _ -> T.F (-1.)) in
    match
      Exec.run (oob_graph ())
        ~config:(compiled_cfg ~kernels ~domains:1 ())
        ~symbols:[ ("N", 9) ]
        ~args:[ ("X", x) ]
    with
    | exception e -> (Printexc.to_string e, floats x)
    | _ -> Alcotest.fail "out-of-bounds write must raise"
  in
  let closure_msg, closure_x = run false in
  let kernel_msg, kernel_x = run true in
  Alcotest.(check string) "same error message" closure_msg kernel_msg;
  Alcotest.(check (list (float 0.)))
    "same partial effects" closure_x kernel_x

let test_zero_trip_kernel () =
  let x = Tensor.init T.F64 [| 8 |] (fun _ -> T.F 7.) in
  let r =
    Exec.run (oob_graph ())
      ~config:(compiled_cfg ~domains:1 ())
      ~symbols:[ ("N", 0) ]
      ~args:[ ("X", x) ]
  in
  Alcotest.(check (list (float 0.)))
    "X untouched" (List.init 8 (fun _ -> 7.)) (floats x);
  Alcotest.(check int) "no tasklets ran" 0 r.R.r_counters.R.tasklet_execs

let suite =
  [ ("Tensor.fill: dense and strided", `Quick, test_tensor_fill);
    ("Tensor.scale: dense and strided", `Quick, test_tensor_scale);
    ("Tensor.axpy: dense, strided, mismatch", `Quick, test_tensor_axpy);
    ("engines workloads lower to expected kinds", `Quick,
      test_recognized_kinds);
    ("~kernels:false keeps the closure path", `Quick, test_kernels_disabled);
    ("non-affine subscript falls back with reason", `Quick,
      test_nonaffine_fallback);
    ("engines workloads: kernel == closure at 1/2/4 domains", `Quick,
      test_engines_workload_paths);
    ("failed bounds pre-check defers to the closure nest", `Quick,
      test_oob_same_error);
    ("zero-trip launch no-ops", `Quick, test_zero_trip_kernel);
    ("corpus repros pass the kernel oracle", `Quick, test_corpus_kernels) ]
  @ List.map
      (fun c ->
        let name, _, _, _ = c in
        ( Fmt.str "fixture %s: kernel == closure at 1/2/4 domains" name,
          `Quick, test_fixture_paths c ))
      Test_crossval.fixture_cases
  @ List.map
      (fun name ->
        ( Fmt.str "polybench %s: kernel == closure at 1/2/4 domains" name,
          `Quick, test_polybench_paths name ))
      Workloads.Polybench.names
