(* Cross-validation: the analytic machine model against the interpreter's
   measured instrumentation.  The model's operation and movement counts
   must agree with what actually executes — this is what makes the
   benchmark harness's modeled times trustworthy. *)

module E = Symbolic.Expr
module T = Tasklang.Types
module Cost = Machine.Cost
module R = Obs.Report
open Sdfg_ir
open Interp

let spec = Machine.Spec.paper_testbed

let close ?(tol = 0.05) a b =
  Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let test_matmul_counts () =
  let m, n, k = (8, 7, 6) in
  let symbols = [ ("M", m); ("N", n); ("K", k) ] in
  let g = Workloads.Kernels.matmul () in
  let a = Tensor.init T.F64 [| m; k |] (fun _ -> T.F 1.) in
  let b = Tensor.init T.F64 [| k; n |] (fun _ -> T.F 1.) in
  let c = Tensor.create T.F64 [| m; n |] in
  let stats = Exec.run g ~symbols ~args:[ ("A", a); ("B", b); ("C", c) ] in
  let r = Cost.estimate ~spec ~target:Cost.Tcpu ~symbols g in
  (* tasklet executions: model iterations = interpreter tasklet count *)
  Alcotest.(check bool)
    (Fmt.str "iterations %.0f ~ tasklets %d" r.Cost.r_acct.Cost.iterations
       stats.R.r_counters.R.tasklet_execs)
    true
    (close r.Cost.r_acct.Cost.iterations
       (float_of_int stats.R.r_counters.R.tasklet_execs));
  (* flops: 2 per multiply-accumulate = 2*M*N*K *)
  Alcotest.(check bool)
    (Fmt.str "flops %.0f ~ 2MNK %d" r.Cost.r_flops (2 * m * n * k))
    true
    (close r.Cost.r_flops (float_of_int (2 * m * n * k)));
  (* WCR commits observed by the interpreter equal M*N*K *)
  Alcotest.(check int) "interpreter WCR count" (m * n * k)
    stats.R.r_counters.R.wcr_writes

let test_stencil_counts () =
  let nsize = 16 and t = 3 in
  let symbols = [ ("N", nsize); ("T", t) ] in
  let g = Workloads.Kernels.jacobi () in
  let a = Tensor.init T.F64 [| nsize; nsize |] (fun _ -> T.F 1.) in
  let b = Tensor.create T.F64 [| nsize; nsize |] in
  let stats = Exec.run g ~symbols ~args:[ ("A", a); ("B", b) ] in
  let r = Cost.estimate ~spec ~target:Cost.Tcpu ~symbols g in
  (* 2 sweeps per step over the (N-2)^2 interior *)
  let expected = 2 * t * (nsize - 2) * (nsize - 2) in
  Alcotest.(check int) "interpreter iterations" expected
    stats.R.r_counters.R.tasklet_execs;
  Alcotest.(check bool)
    (Fmt.str "model iterations %.0f ~ %d" r.Cost.r_acct.Cost.iterations
       expected)
    true
    (close r.Cost.r_acct.Cost.iterations (float_of_int expected))

let test_bfs_counts () =
  (* the model's visit hints reproduce the interpreter's level count *)
  let gr = Workloads.Graphs.road_grid ~width:16 ~height:16 ~seed:9 in
  let levels = Workloads.Graphs.bfs_levels gr ~source:0 in
  Alcotest.(check bool) "road graph has many levels" true (levels > 8);
  let depth = Workloads.Graphs.run_bfs gr ~source:0 in
  let max_depth = ref 0 in
  for v = 0 to gr.gr_nodes - 1 do
    max_depth := max !max_depth (T.to_int (Tensor.get depth [ v ]))
  done;
  Alcotest.(check int) "levels = max depth + 1" levels (!max_depth + 1)

let test_transform_reduces_modeled_and_real_movement () =
  (* LocalStorage reduces both the modeled DRAM traffic and the
     interpreter's measured element movement for tiled GEMM *)
  let symbols = [ ("M", 8); ("N", 8); ("K", 8) ] in
  let build () =
    let g = Workloads.Kernels.matmul () in
    let tiling = Transform.Map_xforms.map_tiling_sized ~tile_sizes:[ 4 ] in
    let cand =
      tiling.Transform.Xform.x_find g
      |> List.find (fun c ->
             State.label (Sdfg.state g c.Transform.Xform.c_state) = "main")
    in
    Transform.Xform.apply g tiling cand;
    g
  in
  let run g =
    let a = Tensor.init T.F64 [| 8; 8 |] (fun _ -> T.F 1.) in
    let b = Tensor.init T.F64 [| 8; 8 |] (fun _ -> T.F 1.) in
    let c = Tensor.create T.F64 [| 8; 8 |] in
    Exec.run g ~symbols ~args:[ ("A", a); ("B", b); ("C", c) ]
  in
  let base = run (build ()) in
  let g = build () in
  (* pack the B tile *)
  let x = Transform.Data_xforms.local_storage in
  (match
     List.find_opt
       (fun c ->
         String.length c.Transform.Xform.c_note > 0
         && c.Transform.Xform.c_note.[0] = 'B')
       (x.Transform.Xform.x_find g)
   with
  | Some c -> Transform.Xform.apply g x c
  | None -> Alcotest.fail "no B candidate");
  let packed = run g in
  (* the interpreter still runs the same number of tasklets *)
  Alcotest.(check int) "same tasklet count"
    base.R.r_counters.R.tasklet_execs packed.R.r_counters.R.tasklet_execs;
  (* and the model sees less DRAM traffic *)
  let traffic g = (Cost.estimate ~spec ~target:Cost.Tcpu ~symbols g).Cost.r_bytes in
  Alcotest.(check bool) "modeled traffic not increased" true
    (traffic g <= traffic (build ()) +. 1.)

(* --- compiled engine vs reference engine --------------------------------

   The compiled engine (Plan) must be observationally identical to the
   reference interpreter: bit-identical tensors AND identical
   instrumentation counters, across every Polybench kernel and every
   fixture graph.  Counter equality is the strong check — it proves the
   plans execute the same tasklets, move the same elements and resolve
   the same write conflicts, not merely that they converge to the same
   numbers. *)

let tensor_bits (t : Tensor.t) =
  match t.Tensor.buf with
  | Tensor.Fbuf a -> Array.to_list (Array.map Int64.bits_of_float a)
  | Tensor.Ibuf a -> List.map Int64.of_int (Array.to_list a)

let counter_list (x : R.counters) =
  [ x.R.elements_moved; x.R.tasklet_execs; x.R.map_iterations;
    x.R.stream_pushes; x.R.stream_pops; x.R.states_executed; x.R.wcr_writes ]

let check_stats_equal name (r : R.t) (c : R.t) =
  Alcotest.(check (list int))
    (name ^ ": counters identical across engines")
    (counter_list r.R.r_counters)
    (counter_list c.R.r_counters)

(* Run [build ()] under both engines on identically-initialized fresh
   args and compare every output tensor bit for bit, plus all counters —
   first with instrumentation off, then again at level [All], where the
   timing trees must also have identical shapes (same constructs, same
   nesting, same invocation counts) and the counters must not drift from
   the uninstrumented runs. *)
let compare_engines ~name ~build ~args ~symbols () =
  (* domains pinned to 1: reference-vs-compiled bit-identity is the
     sequential contract; test_parallel owns the 1/2/4-domain one *)
  let run ?(instrument = Obs.Collect.Off) engine =
    let g = build () in
    let a = args () in
    let config =
      Exec.Config.(
        default |> with_engine engine |> with_instrument instrument
        |> with_domains 1)
    in
    let report = Exec.run g ~config ~symbols ~args:a in
    (a, report)
  in
  let check_tensors tag ra ca =
    List.iter2
      (fun (n1, t1) (n2, t2) ->
        Alcotest.(check string) (tag ^ ": argument order") n1 n2;
        Alcotest.(check (list int64))
          (Fmt.str "%s: %S bit-identical across engines" tag n1)
          (tensor_bits t1) (tensor_bits t2))
      ra ca
  in
  let ra, rs = run Plan.reference in
  let ca, cs = run Plan.compiled in
  check_tensors name ra ca;
  check_stats_equal name rs cs;
  let ia, ir = run ~instrument:Obs.Collect.All Plan.reference in
  let ja, jr = run ~instrument:Obs.Collect.All Plan.compiled in
  check_tensors (name ^ " [instrumented]") ia ja;
  check_stats_equal (name ^ " [instrumented]") ir jr;
  Alcotest.(check string)
    (name ^ ": timer tree shapes identical across engines")
    (R.shape ir) (R.shape jr);
  (* instrumentation must observe, not perturb *)
  check_stats_equal (name ^ " [instrumented vs plain]") rs ir

let test_engines_polybench name () =
  let k = Workloads.Polybench.find name in
  compare_engines ~name
    ~build:(fun () ->
      let g = k.Workloads.Polybench.k_build () in
      Validate.check g;
      g)
    ~args:(fun () -> Test_polybench.alloc_args (k.k_build ()) k.k_mini)
    ~symbols:k.k_mini ()

let farr shape f = Tensor.init T.F64 shape (fun idx -> T.F (f idx))
let iarr shape f = Tensor.init T.I64 shape (fun idx -> T.I (f idx))

(* The fixture graphs with the setups of the interpreter conformance
   suite: maps, WCR, reductions, time loops, streams and consume scopes,
   data-dependent branching, indirection and nested SDFGs. *)
let fixture_cases =
  [ ( "vector_add", Fixtures.vector_add, [ ("N", 5) ],
      fun () ->
        [ ("A", farr [| 5 |] (fun i -> float_of_int (List.hd i)));
          ("B", farr [| 5 |] (fun _ -> 100.));
          ("C", Tensor.create T.F64 [| 5 |]) ] );
    ( "matmul_mapreduce", Fixtures.matmul_mapreduce,
      [ ("M", 3); ("N", 4); ("K", 5) ],
      fun () ->
        [ ("A",
           farr [| 3; 5 |] (function [ i; j ] -> float_of_int ((i * 5) + j) | _ -> 0.));
          ("B", farr [| 5; 4 |] (function [ i; j ] -> float_of_int (i - j) | _ -> 0.));
          ("C", Tensor.create T.F64 [| 3; 4 |]) ] );
    ( "matmul_wcr", Fixtures.matmul_wcr, [ ("M", 4); ("N", 3); ("K", 6) ],
      fun () ->
        [ ("A",
           farr [| 4; 6 |] (function [ i; j ] -> sin (float_of_int ((i * 7) + j)) | _ -> 0.));
          ("B",
           farr [| 6; 3 |] (function [ i; j ] -> cos (float_of_int (i + (3 * j))) | _ -> 0.));
          ("C", Tensor.create T.F64 [| 4; 3 |]) ] );
    ( "laplace", Fixtures.laplace, [ ("N", 16); ("T", 10) ],
      fun () ->
        [ ("A",
           farr [| 2; 16 |] (function [ 0; i ] -> float_of_int (i * i) | _ -> 0.)) ] );
    ( "spmv", Fixtures.spmv, [ ("H", 3); ("W", 4); ("nnz", 5) ],
      fun () ->
        [ ("A_row", iarr [| 4 |] (fun i -> [| 0; 2; 3; 5 |].(List.hd i)));
          ("A_col", iarr [| 5 |] (fun i -> [| 0; 2; 1; 0; 3 |].(List.hd i)));
          ("A_val", farr [| 5 |] (fun i -> [| 1.; 2.; 3.; 4.; 5. |].(List.hd i)));
          ("x", farr [| 4 |] (fun i -> float_of_int (1 + List.hd i)));
          ("b", Tensor.create T.F64 [| 3 |]) ] );
    ( "fibonacci", Fixtures.fibonacci, [ ("P", 4) ],
      fun () ->
        [ ("N", iarr [||] (fun _ -> 10)); ("out", Tensor.create T.I64 [||]) ] );
    ( "branching", Fixtures.branching, [],
      fun () ->
        [ ("A", farr [||] (fun _ -> 2.)); ("B", farr [||] (fun _ -> 1.));
          ("C", Tensor.create T.F64 [||]); ("Ci", Tensor.create T.I64 [||]) ] );
    ( "histogram", Fixtures.histogram, [ ("H", 8); ("W", 8); ("B", 8) ],
      fun () ->
        [ ("image",
           farr [| 8; 8 |]
             (function [ i; j ] -> float_of_int (((i * 8) + j) mod 8) /. 8. | _ -> 0.));
          ("hist", Tensor.create T.I64 [| 8 |]) ] );
    ( "nested_loop", Fixtures.nested_loop, [ ("N", 4) ],
      fun () ->
        [ ("data", farr [| 4 |] (fun i -> [| 0.5; 1.0; 7.9; 16.0 |].(List.hd i)));
          ("counts", Tensor.create T.I64 [| 4 |]) ] ) ]

let test_engines_fixture (name, build, symbols, args) () =
  compare_engines ~name ~build ~args ~symbols ()

let test_nonpositive_stride_raises () =
  (* a map whose stride evaluates to zero or below must raise a
     Runtime_error naming the parameter — in both engines — instead of
     silently looping with a clamped step *)
  List.iter
    (fun engine ->
      List.iter
        (fun s ->
          let g, st = Builder.Build.single_state ~symbols:[ "N"; "S" ] "m" in
          Sdfg.add_array g "X" ~shape:[ E.sym "N" ] ~dtype:T.F64;
          ignore
            (Builder.Build.mapped_tasklet g st ~name:"t" ~params:[ "i" ]
               ~ranges:
                 [ Symbolic.Subset.range ~stride:(E.sym "S") E.zero
                     (E.sub (E.sym "N") E.one) ]
               ~ins:[]
               ~outs:
                 [ Builder.Build.out_elem "x" "X" [ E.sym "i" ] ]
               ~code:(`Src "x = 1.0") ());
          ignore (Builder.Build.finalize g);
          let contains msg sub =
            let n = String.length msg and m = String.length sub in
            let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
            go 0
          in
          match
            Exec.run g
              ~config:(Exec.Config.with_engine engine Exec.Config.default)
              ~symbols:[ ("N", 4); ("S", s) ]
          with
          | exception Exec.Runtime_error msg ->
            Alcotest.(check bool)
              (Fmt.str "error names the parameter (stride %d): %s" s msg)
              true
              (contains msg "non-positive stride" && contains msg "\"i\"")
          | _ -> Alcotest.failf "stride %d: expected Runtime_error" s)
        [ 0; -2 ])
    [ Plan.reference; Plan.compiled ]

let suite =
  [ ("model vs interpreter: GEMM counts", `Quick, test_matmul_counts);
    ("model vs interpreter: stencil counts", `Quick, test_stencil_counts);
    ("model vs interpreter: BFS levels", `Quick, test_bfs_counts);
    ("LocalStorage effect, modeled and measured", `Quick,
      test_transform_reduces_modeled_and_real_movement);
    ("non-positive map stride raises (both engines)", `Quick,
      test_nonpositive_stride_raises) ]
  @ List.map
      (fun c ->
        let name, _, _, _ = c in
        ( Fmt.str "engines agree: fixture %s" name, `Quick,
          test_engines_fixture c ))
      fixture_cases
  @ List.map
      (fun name ->
        ( Fmt.str "engines agree: polybench %s" name, `Quick,
          test_engines_polybench name ))
      Workloads.Polybench.names
