(* Machine-model tests: the cost engine must respond to program structure
   the way real hardware responds — tiling reduces traffic, parallelism
   reduces time, offloading adds copies, peeling removes atomics. *)

module E = Symbolic.Expr
module Cost = Machine.Cost
module Spec = Machine.Spec

let spec = Spec.paper_testbed
let mm_sizes = [ ("M", 1024); ("N", 1024); ("K", 1024) ]

let est ?(opts = Cost.default_options) ?(target = Cost.Tcpu)
    ?(symbols = mm_sizes) g =
  Cost.estimate ~opts ~spec ~target ~symbols g

let test_parallel_faster_than_sequential () =
  let g = Workloads.Kernels.matmul () in
  let par = (est g).Cost.r_time_s in
  let seq =
    (est ~opts:{ Cost.default_options with Cost.force_sequential = true } g)
      .Cost.r_time_s
  in
  Alcotest.(check bool)
    (Fmt.str "parallel %.3f < sequential %.3f" par seq)
    true (par < seq)

let test_tiling_reduces_traffic () =
  let untiled = Workloads.Kernels.matmul () in
  let before = (est untiled).Cost.r_acct.Cost.bytes in
  let tiled = Workloads.Kernels.matmul () in
  let x = Transform.Map_xforms.map_tiling_sized ~tile_sizes:[ 64 ] in
  let cand =
    x.Transform.Xform.x_find tiled
    |> List.find (fun c ->
           Sdfg_ir.State.label
             (Sdfg_ir.Sdfg.state tiled c.Transform.Xform.c_state)
           = "main")
  in
  Transform.Xform.apply tiled x cand;
  let after = (est tiled).Cost.r_acct.Cost.bytes in
  Alcotest.(check bool)
    (Fmt.str "tiled traffic %.3g < untiled %.3g" after before)
    true
    (after < before /. 4.)

let test_gpu_offload_pays_copies () =
  let g = Workloads.Kernels.matmul () in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform;
  let r = est ~target:Cost.Tgpu g in
  (* exactly A, B (in), C (in+out) at 8 MB each = 33.5 MB *)
  Alcotest.(check bool) "copy volume from propagated memlets" true
    (Float.abs (r.Cost.r_acct.Cost.copies -. (4. *. 1024. *. 1024. *. 8.))
     < 1e6)

let test_peeling_removes_atomics () =
  let g = Workloads.Kernels.histogram () in
  let symbols = [ ("H", 2048); ("W", 2048) ] in
  let before = (est ~symbols g).Cost.r_acct.Cost.atomics in
  Alcotest.(check bool) "histogram has conflicting commits" true (before > 0.);
  Transform.Xform.apply_first_exn g Transform.Data_xforms.accumulate_transient;
  let after = (est ~symbols g).Cost.r_acct.Cost.atomics in
  Alcotest.(check bool) "privatization removes them" true (after = 0.)

let test_vectorization_speeds_compute () =
  let g = Fixtures.vector_add () in
  let symbols = [ ("N", 1 lsl 16) ] in
  let scalar = (est ~symbols g).Cost.r_compute_s in
  Transform.Xform.apply_first_exn g
    (Transform.Map_xforms.vectorization_width ~width:4);
  let vec = (est ~symbols g).Cost.r_compute_s in
  Alcotest.(check bool)
    (Fmt.str "vector compute %.3g < scalar %.3g" vec scalar)
    true (vec < scalar)

let test_state_visit_counting () =
  (* the laplace time loop runs T times; flops must scale with T *)
  let flops t =
    (est
       ~symbols:[ ("N", 256); ("T", t) ]
       (Fixtures.laplace ()))
      .Cost.r_flops
  in
  let f10 = flops 10 and f40 = flops 40 in
  Alcotest.(check bool)
    (Fmt.str "flops scale with T (%.3g vs %.3g)" f10 f40)
    true
    (Float.abs ((f40 /. f10) -. 4.) < 0.2)

let test_triangular_visits () =
  (* cholesky work is ~N^3/3: per-visit evaluation with the loop symbol
     bound must give super-linear scaling in N *)
  let flops n =
    (est ~symbols:[ ("N", n) ]
       ((Workloads.Polybench.find "cholesky").Workloads.Polybench.k_build ()))
      .Cost.r_flops
  in
  let r = flops 256 /. flops 128 in
  Alcotest.(check bool) (Fmt.str "cholesky flops ratio %.2f ~ 8" r) true
    (r > 5. && r < 12.)

let test_indirection_classified_random () =
  let g = Workloads.Kernels.spmv () in
  let r =
    est
      ~opts:{ Cost.default_options with Cost.hints = [ ("row_dot", 64.) ] }
      ~symbols:[ ("H", 4096); ("W", 4096); ("nnz", 262144) ]
      g
  in
  Alcotest.(check bool) "x gathers are random-access" true
    (r.Cost.r_acct.Cost.rand_bytes > 0.);
  Alcotest.(check bool) "CSR scans stream" true
    (r.Cost.r_acct.Cost.bytes +. r.Cost.r_acct.Cost.dyn_bytes
     > r.Cost.r_acct.Cost.rand_bytes)

let test_fpga_pipelining () =
  let g = Fixtures.vector_add () in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.fpga_transform;
  let symbols = [ ("N", 1 lsl 20) ] in
  let pipelined = (est ~target:Cost.Tfpga ~symbols g).Cost.r_time_s in
  let naive =
    (est ~target:Cost.Tfpga ~symbols
       ~opts:{ Cost.default_options with Cost.naive_fpga = true }
       g)
      .Cost.r_time_s
  in
  Alcotest.(check bool)
    (Fmt.str "pipelined %.4f << naive HLS %.4f" pipelined naive)
    true
    (naive > 4. *. pipelined)

let test_baseline_ordering () =
  (* for an embarrassingly parallel compute-heavy kernel:
     SDFG (parallel) < ICC < GCC <= Clang *)
  let g () = Workloads.Kernels.matmul () in
  let t b = (Baselines.evaluate ~spec b ~symbols:mm_sizes (g ())).Cost.r_time_s in
  let sdfg = t Baselines.sdfg_cpu
  and gcc = t Baselines.gcc
  and clang = t Baselines.clang
  and icc = t Baselines.icc in
  Alcotest.(check bool) "SDFG fastest" true (sdfg < icc);
  Alcotest.(check bool) "icc <= gcc" true (icc <= gcc);
  Alcotest.(check bool) "gcc <= clang" true (gcc <= clang)

let test_report_consistency () =
  let r = est (Workloads.Kernels.matmul ()) in
  Alcotest.(check bool) "time >= max(compute, memory)" true
    (r.Cost.r_time_s >= Float.max r.Cost.r_compute_s r.Cost.r_memory_s);
  Alcotest.(check bool) "positive flops" true (r.Cost.r_flops > 0.)

let suite =
  [ ("parallel < sequential", `Quick, test_parallel_faster_than_sequential);
    ("tiling cuts DRAM traffic", `Quick, test_tiling_reduces_traffic);
    ("GPU offload pays exact PCIe copies", `Quick, test_gpu_offload_pays_copies);
    ("privatization removes atomics", `Quick, test_peeling_removes_atomics);
    ("vectorization speeds compute", `Quick, test_vectorization_speeds_compute);
    ("state-machine visit counting", `Quick, test_state_visit_counting);
    ("triangular loop nests (cholesky)", `Quick, test_triangular_visits);
    ("indirection classified as random access", `Quick,
      test_indirection_classified_random);
    ("FPGA pipelining vs naive HLS", `Quick, test_fpga_pipelining);
    ("baseline compiler ordering", `Quick, test_baseline_ordering);
    ("report consistency", `Quick, test_report_consistency) ]
