(* Canonical SDFGs from the paper's figures, used across the test suites. *)

module E = Symbolic.Expr
module S = Symbolic.Subset
module T = Tasklang.Types
open Sdfg_ir
open Builder

let f64 = T.F64
let i64 = T.I64

(* Fig. 6a: C[i] = A[i] + B[i] *)
let vector_add () =
  let g, st = Build.single_state ~symbols:[ "N" ] "vadd" in
  let n = E.sym "N" in
  Sdfg.add_array g "A" ~shape:[ n ] ~dtype:f64;
  Sdfg.add_array g "B" ~shape:[ n ] ~dtype:f64;
  Sdfg.add_array g "C" ~shape:[ n ] ~dtype:f64;
  let i = E.sym "i" in
  ignore
    (Build.mapped_tasklet g st ~name:"add" ~params:[ "i" ]
       ~ranges:[ S.range E.zero (E.sub n E.one) ]
       ~ins:[ Build.in_elem "a" "A" [ i ]; Build.in_elem "b" "B" [ i ] ]
       ~outs:[ Build.out_elem "c" "C" [ i ] ]
       ~code:(`Src "c = a + b") ());
  Build.finalize g

(* Fig. 9b: map-reduce matrix multiplication C = A @ B through a transient
   3D tensor reduced over axis 2. *)
let matmul_mapreduce () =
  let g, st = Build.single_state ~symbols:[ "M"; "N"; "K" ] "mm" in
  let m = E.sym "M" and n = E.sym "N" and k = E.sym "K" in
  Sdfg.add_array g "A" ~shape:[ m; k ] ~dtype:f64;
  Sdfg.add_array g "B" ~shape:[ k; n ] ~dtype:f64;
  Sdfg.add_array g "C" ~shape:[ m; n ] ~dtype:f64;
  Sdfg.add_array g "tmp" ~transient:true ~shape:[ m; n; k ] ~dtype:f64;
  let i = E.sym "i" and j = E.sym "j" and kk = E.sym "k" in
  ignore
    (Build.map_reduce g st ~name:"mult" ~params:[ "i"; "j"; "k" ]
       ~ranges:
         [ S.range E.zero (E.sub m E.one);
           S.range E.zero (E.sub n E.one);
           S.range E.zero (E.sub k E.one) ]
       ~ins:
         [ Build.in_elem "a" "A" [ i; kk ]; Build.in_elem "b" "B" [ kk; j ] ]
       ~out_conn:"t" ~tmp_data:"tmp"
       ~tmp_subset:(S.of_indices [ i; j; kk ])
       ~out_data:"C"
       ~out_subset:(S.of_shape [ m; n ])
       ~wcr:Wcr.sum ~code:(`Src "t = a * b") ());
  (* the reduce node reduces over axis 2 with identity 0 *)
  let rnode =
    State.nodes st
    |> List.find_map (fun (nid, nd) ->
           match nd with Defs.Reduce _ -> Some nid | _ -> None)
    |> Option.get
  in
  State.replace_node st rnode
    (Defs.Reduce
       { r_wcr = Defs.Wcr_sum; r_axes = Some [ 2 ]; r_identity = Some (T.F 0.) });
  Build.finalize g

(* WCR matrix multiplication, the result of MapReduceFusion: the tasklet
   writes C[i,j] directly with a Sum conflict resolution.  [init] fills C
   with zero in a preceding state. *)
let matmul_wcr () =
  let g = Sdfg.create ~symbols:[ "M"; "N"; "K" ] "mm_wcr" in
  let m = E.sym "M" and n = E.sym "N" and k = E.sym "K" in
  Sdfg.add_array g "A" ~shape:[ m; k ] ~dtype:f64;
  Sdfg.add_array g "B" ~shape:[ k; n ] ~dtype:f64;
  Sdfg.add_array g "C" ~shape:[ m; n ] ~dtype:f64;
  let init = Sdfg.add_state g ~label:"init" () in
  let i = E.sym "i" and j = E.sym "j" and kk = E.sym "k" in
  ignore
    (Build.mapped_tasklet g init ~name:"zero" ~params:[ "i"; "j" ]
       ~ranges:[ S.range E.zero (E.sub m E.one); S.range E.zero (E.sub n E.one) ]
       ~ins:[]
       ~outs:[ Build.out_elem "c" "C" [ i; j ] ]
       ~code:(`Src "c = 0.0") ());
  let main = Sdfg.add_state g ~label:"main" () in
  ignore (Sdfg.add_transition g ~src:(State.id init) ~dst:(State.id main) ());
  ignore
    (Build.mapped_tasklet g main ~name:"mult" ~params:[ "i"; "j"; "k" ]
       ~ranges:
         [ S.range E.zero (E.sub m E.one);
           S.range E.zero (E.sub n E.one);
           S.range E.zero (E.sub k E.one) ]
       ~ins:[ Build.in_elem "a" "A" [ i; kk ]; Build.in_elem "b" "B" [ kk; j ] ]
       ~outs:[ Build.out_elem ~wcr:Wcr.sum "c" "C" [ i; j ] ]
       ~code:(`Src "c = a * b") ());
  Build.finalize g

(* Fig. 2b: 1-D Laplace operator with a time loop in the state machine.
   A is [2, N]; each step reads row t%2 and writes row (t+1)%2. *)
let laplace () =
  let g = Sdfg.create ~symbols:[ "N"; "T" ] "laplace" in
  let n = E.sym "N" in
  Sdfg.add_array g "A" ~shape:[ E.int 2; n ] ~dtype:f64;
  let body = Sdfg.add_state g ~label:"body" () in
  let t = E.sym "t" in
  let i = E.sym "i" in
  let cur = E.modulo t (E.int 2) and nxt = E.modulo (E.add t E.one) (E.int 2) in
  ignore
    (Build.mapped_tasklet g body ~name:"laplace_op" ~params:[ "i" ]
       ~ranges:[ S.range E.one (E.sub n (E.int 2)) ]
       ~ins:[ Build.in_ "a" "A" [ S.index cur; S.range (E.sub i E.one) (E.add i E.one) ] ]
       ~outs:[ Build.out_ "o" "A" [ S.index nxt; S.index i ] ]
       ~code:(`Src "o = a[0] - 2.0 * a[1] + a[2]") ());
  (* t = 0 on entry; loop while t < T *)
  let init = Sdfg.add_state g ~label:"init" () in
  Sdfg.set_start g (State.id init);
  ignore
    (Sdfg.add_transition g ~src:(State.id init) ~dst:(State.id body)
       ~assign:[ ("t", E.zero) ] ());
  ignore
    (Sdfg.add_transition g ~src:(State.id body) ~dst:(State.id body)
       ~cond:(Bexp.lt (E.add t E.one) (E.sym "T"))
       ~assign:[ ("t", E.add t E.one) ]
       ());
  Build.finalize g

(* Fig. 4 / Appendix F: sparse matrix-vector multiplication with an
   indirect access subgraph. *)
let spmv () =
  let g, st = Build.single_state ~symbols:[ "H"; "W"; "nnz" ] "spmv" in
  let h = E.sym "H" and w = E.sym "W" and nnz = E.sym "nnz" in
  Sdfg.add_array g "A_row" ~shape:[ E.add h E.one ] ~dtype:i64;
  Sdfg.add_array g "A_col" ~shape:[ nnz ] ~dtype:i64;
  Sdfg.add_array g "A_val" ~shape:[ nnz ] ~dtype:f64;
  Sdfg.add_array g "x" ~shape:[ w ] ~dtype:f64;
  Sdfg.add_array g "b" ~shape:[ h ] ~dtype:f64;
  let i = E.sym "i" and j = E.sym "j" in
  (* outer map over rows; inner map over the row's nonzeros with a
     data-dependent range A_row[i] : A_row[i+1] *)
  ignore
    (Build.mapped_tasklet g st ~name:"row_gather" ~params:[ "i"; "j" ]
       ~ranges:
         [ S.range E.zero (E.sub h E.one);
           (* data-dependent ranges are expressed through symbols bound by
              indirection tasklets in full DaCe; here the inner range uses
              the dynamic-access idiom: iterate all nnz and mask *)
           S.range E.zero (E.sub nnz E.one) ]
       ~ins:
         [ Build.in_ "rows" "A_row" [ S.range i (E.add i E.one) ];
           Build.in_elem "a" "A_val" [ j ];
           Build.in_elem "col" "A_col" [ j ];
           Build.in_ ~dynamic:true "x_in" "x" [ S.full w ] ]
       ~outs:[ Build.out_elem ~wcr:Wcr.sum "out" "b" [ i ] ]
       ~code:
         (`Src
           "if j >= rows[0] and j < rows[1] { out = a * x_in[col] }")
       ());
  Build.finalize g

(* Fig. 8: asynchronous Fibonacci with a consume scope. *)
let fibonacci () =
  let g = Sdfg.create ~symbols:[ "P" ] "fibonacci" in
  Sdfg.add_scalar g "N" ~dtype:i64;
  Sdfg.add_scalar g "out" ~dtype:i64;
  Sdfg.add_stream g "S" ~dtype:i64;
  let st = Sdfg.add_state g ~label:"main" () in
  (* feeder: push N into S *)
  let feeder =
    Build.tasklet st ~name:"feed"
      ~inputs:[ { Defs.k_name = "n"; k_dtype = i64; k_rank = 0 } ]
      ~outputs:[ { Defs.k_name = "s"; k_dtype = i64; k_rank = 0 } ]
      ~code:(`Src "s = n") ()
  in
  let n_acc = Build.access st "N" in
  let s_acc = Build.access st "S" in
  Build.edge st ~dst_conn:"n"
    ~memlet:(Memlet.element "N" [ E.zero ])
    ~src:n_acc ~dst:feeder ();
  Build.edge st ~src_conn:"s"
    ~memlet:(Memlet.element "S" [ E.zero ])
    ~src:feeder ~dst:s_acc ();
  (* consume scope: pop v; out += 1 if v<=2 else push v-1, v-2 *)
  let entry, exit_ =
    Build.consume_scope st ~pe:"p" ~num_pes:(E.sym "P") ~stream:"S" ()
  in
  let body =
    Build.tasklet st ~name:"fib_step"
      ~inputs:[ { Defs.k_name = "v"; k_dtype = i64; k_rank = 0 } ]
      ~outputs:
        [ { Defs.k_name = "o"; k_dtype = i64; k_rank = 0 };
          { Defs.k_name = "sout"; k_dtype = i64; k_rank = 0 } ]
      ~code:
        (`Src
          "if v <= 2 { o = 1 } else { sout = v - 1\nsout = v - 2 }")
      ()
  in
  Build.edge st ~memlet:(Memlet.dyn "S" [ S.index E.zero ]) ~src:s_acc
    ~dst:entry ~dst_conn:"IN_S" ();
  Build.edge st ~src_conn:"OUT_S" ~dst_conn:"v"
    ~memlet:(Memlet.element "S" [ E.zero ])
    ~src:entry ~dst:body ();
  Build.edge st ~src_conn:"o" ~dst_conn:"IN_out"
    ~memlet:(Memlet.element ~wcr:Wcr.sum "out" [ E.zero ])
    ~src:body ~dst:exit_ ();
  (* pushes back into S close the cycle through a post-scope access *)
  let s_out = Build.access st "S" in
  Build.edge st ~src_conn:"sout" ~dst_conn:"IN_S2"
    ~memlet:(Memlet.dyn "S" [ S.index E.zero ])
    ~src:body ~dst:exit_ ();
  Build.edge st ~src_conn:"OUT_S2"
    ~memlet:(Memlet.dyn "S" [ S.index E.zero ])
    ~src:exit_ ~dst:s_out ();
  let out_acc = Build.access st "out" in
  Build.edge st ~src_conn:"OUT_out"
    ~memlet:(Memlet.element ~wcr:Wcr.sum "out" [ E.zero ])
    ~src:exit_ ~dst:out_acc ();
  Propagate.propagate g;
  g

(* Fig. 10a: branching on a data value.  C = A + B; then C *= 2 if
   C <= 5 else C /= 2 (scalars). *)
let branching () =
  let g = Sdfg.create "branch" in
  Sdfg.add_scalar g "A" ~dtype:f64;
  Sdfg.add_scalar g "B" ~dtype:f64;
  Sdfg.add_scalar g "C" ~dtype:f64;
  Sdfg.add_scalar g "Ci" ~dtype:i64;
  let s0 = Sdfg.add_state g ~label:"sum" () in
  ignore
    (Build.simple_tasklet g s0 ~name:"add"
       ~ins:
         [ Build.in_elem "a" "A" [ E.zero ]; Build.in_elem "b" "B" [ E.zero ] ]
       ~outs:
         [ Build.out_elem "c" "C" [ E.zero ];
           Build.out_elem "ci" "Ci" [ E.zero ] ]
       ~code:(`Src "c = a + b\nci = floor(a + b)") ());
  let s_double = Sdfg.add_state g ~label:"double" () in
  ignore
    (Build.simple_tasklet g s_double ~name:"double"
       ~ins:[ Build.in_elem "ci" "C" [ E.zero ] ]
       ~outs:[ Build.out_elem "co" "C" [ E.zero ] ]
       ~code:(`Src "co = 2.0 * ci") ());
  let s_half = Sdfg.add_state g ~label:"halve" () in
  ignore
    (Build.simple_tasklet g s_half ~name:"halve"
       ~ins:[ Build.in_elem "ci" "C" [ E.zero ] ]
       ~outs:[ Build.out_elem "co" "C" [ E.zero ] ]
       ~code:(`Src "co = ci / 2.0") ());
  ignore
    (Sdfg.add_transition g ~src:(State.id s0) ~dst:(State.id s_double)
       ~cond:(Bexp.le (E.sym "Ci") (E.int 5))
       ());
  ignore
    (Sdfg.add_transition g ~src:(State.id s0) ~dst:(State.id s_half)
       ~cond:(Bexp.gt (E.sym "Ci") (E.int 5))
       ());
  Build.finalize g

(* Histogram with write-conflict resolution (§6.1): bins values of a 2-D
   image into B buckets with a Sum WCR. *)
let histogram () =
  let g = Sdfg.create ~symbols:[ "H"; "W"; "B" ] "histogram" in
  let h = E.sym "H" and w = E.sym "W" and b = E.sym "B" in
  Sdfg.add_array g "image" ~shape:[ h; w ] ~dtype:f64;
  Sdfg.add_array g "hist" ~shape:[ b ] ~dtype:i64;
  let init = Sdfg.add_state g ~label:"init" () in
  let ii = E.sym "ii" in
  ignore
    (Build.mapped_tasklet g init ~name:"zero" ~params:[ "ii" ]
       ~ranges:[ S.range E.zero (E.sub b E.one) ]
       ~ins:[]
       ~outs:[ Build.out_elem "o" "hist" [ ii ] ]
       ~code:(`Src "o = 0") ());
  let main = Sdfg.add_state g ~label:"main" () in
  ignore (Sdfg.add_transition g ~src:(State.id init) ~dst:(State.id main) ());
  let i = E.sym "i" and j = E.sym "j" in
  ignore
    (Build.mapped_tasklet g main ~name:"bin" ~params:[ "i"; "j" ]
       ~ranges:[ S.range E.zero (E.sub h E.one); S.range E.zero (E.sub w E.one) ]
       ~ins:
         [ Build.in_elem "px" "image" [ i; j ];
           Build.in_ "nb" "hist" [ S.full b ] ]
       ~outs:[ Build.out_ ~wcr:Wcr.sum ~dynamic:true "out" "hist" [ S.full b ] ]
       ~code:(`Src "bin = floor(px * 8.0)\nout[min(max(bin, 0), 7)] = 1")
       ());
  Build.finalize g

(* Fig. 10b-style nested SDFG: per-element inner state machine (here, an
   iterative halving loop counting steps until the value drops below 1). *)
let nested_loop () =
  (* inner SDFG: given scalar v, compute number of halvings to reach < 1 *)
  let inner = Sdfg.create "halve_count" in
  Sdfg.add_scalar inner "v" ~dtype:f64;
  Sdfg.add_scalar inner "steps" ~dtype:i64;
  let init = Sdfg.add_state inner ~label:"init" () in
  ignore
    (Build.simple_tasklet inner init ~name:"zero"
       ~ins:[]
       ~outs:[ Build.out_elem "s" "steps" [ E.zero ] ]
       ~code:(`Src "s = 0") ());
  let body = Sdfg.add_state inner ~label:"halve" () in
  ignore
    (Build.simple_tasklet inner body ~name:"halve"
       ~ins:
         [ Build.in_elem "x" "v" [ E.zero ];
           Build.in_elem "s0" "steps" [ E.zero ] ]
       ~outs:
         [ Build.out_elem "xo" "v" [ E.zero ];
           Build.out_elem "so" "steps" [ E.zero ] ]
       ~code:(`Src "xo = x / 2.0\nso = s0 + 1") ());
  ignore
    (Sdfg.add_transition inner ~src:(State.id init) ~dst:(State.id body)
       ~cond:(Bexp.ge (E.sym "v") E.one) ());
  ignore
    (Sdfg.add_transition inner ~src:(State.id body) ~dst:(State.id body)
       ~cond:(Bexp.ge (E.sym "v") E.one) ());
  (* outer SDFG: map over array, invoke inner per element *)
  let g, st = Build.single_state ~symbols:[ "N" ] "halvings" in
  let n = E.sym "N" in
  Sdfg.add_array g "data" ~shape:[ n ] ~dtype:f64;
  Sdfg.add_array g "counts" ~shape:[ n ] ~dtype:i64;
  let entry, exit_ = Build.map_scope st ~params:[ "i" ]
      ~ranges:[ S.range E.zero (E.sub n E.one) ] () in
  let i = E.sym "i" in
  let nnode =
    Build.nested st ~sdfg:inner ~inputs:[ "v" ] ~outputs:[ "v"; "steps" ] ()
  in
  let d_acc = Build.access st "data" in
  let c_acc = Build.access st "counts" in
  Build.edge st ~dst_conn:"IN_data" ~memlet:(Memlet.full "data" [ n ])
    ~src:d_acc ~dst:entry ();
  Build.edge st ~src_conn:"OUT_data" ~dst_conn:"v"
    ~memlet:(Memlet.element "data" [ i ]) ~src:entry ~dst:nnode ();
  Build.edge st ~src_conn:"steps" ~dst_conn:"IN_counts"
    ~memlet:(Memlet.element "counts" [ i ]) ~src:nnode ~dst:exit_ ();
  Build.edge st ~src_conn:"OUT_counts" ~memlet:(Memlet.full "counts" [ n ])
    ~src:exit_ ~dst:c_acc ();
  Build.finalize g
