(* Optimization-session API tests (§4.2): the result-returning [apply],
   chain save/load/replay round-trips, and mid-chain branching. *)

open Transform

let symbols = [ ("M", 8); ("N", 8); ("K", 8) ]

(* Run [g] on deterministic inputs and return the output matrix. *)
let run_c g =
  let args = Interp.Profile.make_args ~symbols g in
  ignore (Interp.Exec.run ~symbols ~args g);
  List.assoc "C" args

let check_c msg expected got =
  Alcotest.(check bool) msg true (Interp.Tensor.equal ~eps:1e-9 expected got)

let apply_ok s name =
  match Session.apply s name with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "apply %s unexpectedly failed: %s" name msg

let t_apply_result () =
  Std.register_all ();
  let s = Session.create Workloads.Kernels.matmul_mapreduce in
  (* unknown transformation: Error, not an exception *)
  (match Session.apply s "NoSuchTransformation" with
  | Ok () -> Alcotest.fail "unknown transformation applied"
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "message names the transformation" true
      (contains msg "NoSuchTransformation"));
  (* out-of-range candidate index: Error *)
  (match Session.apply ~index:99 s "MapReduceFusion" with
  | Ok () -> Alcotest.fail "candidate 99 applied"
  | Error _ -> ());
  (* failed applications leave the session untouched *)
  Alcotest.(check int) "no steps recorded" 0 (List.length (Session.history s));
  (* the exception-raising variant still raises *)
  (match Session.apply_exn s "NoSuchTransformation" with
  | () -> Alcotest.fail "unknown transformation applied"
  | exception Xform.Not_applicable _ -> ());
  (* ... and Not_applicable is the same exception as Sdfg_ir.Errors' *)
  (match Session.apply_exn s "NoSuchTransformation" with
  | () -> Alcotest.fail "unknown transformation applied"
  | exception Sdfg_ir.Errors.Not_applicable _ -> ());
  apply_ok s "MapReduceFusion";
  Alcotest.(check int) "one step recorded" 1 (List.length (Session.history s))

let t_chain_roundtrip () =
  Std.register_all ();
  let expected = run_c (Workloads.Kernels.matmul_mapreduce ()) in
  let s = Session.create Workloads.Kernels.matmul_mapreduce in
  apply_ok s "MapReduceFusion";
  apply_ok s "MapTiling";
  let path = Filename.temp_file "session" ".chain" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Session.save_chain s path;
      let loaded = Session.load_chain Workloads.Kernels.matmul_mapreduce path in
      Alcotest.(check int) "same number of steps" 2
        (List.length (Session.history loaded));
      let step_names t =
        List.map (fun (st : Xform.chain_step) -> st.cs_xform)
          (Session.to_chain t)
      in
      Alcotest.(check (list string)) "same chain" (step_names s)
        (step_names loaded);
      check_c "loaded chain preserves semantics" expected
        (run_c (Session.current loaded));
      (* replaying the in-memory chain matches the file round-trip *)
      let replayed =
        Session.replay_chain Workloads.Kernels.matmul_mapreduce
          (Session.to_chain s)
      in
      check_c "replayed chain preserves semantics" expected
        (run_c (Session.current replayed)))

let t_branch_at () =
  Std.register_all ();
  let expected = run_c (Workloads.Kernels.matmul_mapreduce ()) in
  let s = Session.create Workloads.Kernels.matmul_mapreduce in
  apply_ok s "MapReduceFusion";
  apply_ok s "MapTiling";
  let branch = Session.branch_at s ~steps:1 in
  Alcotest.(check int) "branch keeps the prefix" 1
    (List.length (Session.history branch));
  (* diverge: the branch takes a different second step *)
  apply_ok branch "GPUTransform";
  Alcotest.(check int) "branch diverged" 2
    (List.length (Session.history branch));
  Alcotest.(check int) "original untouched" 2
    (List.length (Session.history s));
  let step_names t =
    List.map (fun (st : Xform.chain_step) -> st.cs_xform) (Session.to_chain t)
  in
  Alcotest.(check (list string)) "branch chain"
    [ "MapReduceFusion"; "GPUTransform" ]
    (step_names branch);
  Alcotest.(check (list string)) "original chain"
    [ "MapReduceFusion"; "MapTiling" ]
    (step_names s);
  check_c "branch preserves semantics" expected
    (run_c (Session.current branch));
  check_c "original preserves semantics" expected (run_c (Session.current s))

let t_profiled_measure () =
  Std.register_all ();
  let s =
    Session.create_profiled ~warmup:0 ~repeat:1 ~symbols
      Workloads.Kernels.matmul_mapreduce
  in
  apply_ok s "MapReduceFusion";
  match Session.history s with
  | [ e ] ->
    (match e.Session.e_metric with
    | Some m ->
      Alcotest.(check bool) "positive wall-clock metric" true (m > 0.)
    | None -> Alcotest.fail "profiled session recorded no metric")
  | h -> Alcotest.failf "expected 1 history entry, got %d" (List.length h)

let suite =
  [ ("apply returns result", `Quick, t_apply_result);
    ("chain save/load/replay round-trip", `Quick, t_chain_roundtrip);
    ("branch_at diverges from a mid-point", `Quick, t_branch_at);
    ("create_profiled records wall-clock metrics", `Quick, t_profiled_measure) ]
