(* Interpreter tests: execute the paper's example SDFGs and check results
   against straightforward OCaml reference implementations (the
   operational-semantics conformance suite for Appendix A). *)

module E = Symbolic.Expr
module T = Tasklang.Types
module R = Obs.Report
open Interp

let f64 = T.F64
let i64 = T.I64

let farr shape f = Tensor.init f64 shape (fun idx -> T.F (f idx))
let iarr shape f = Tensor.init i64 shape (fun idx -> T.I (f idx))

let check_floats msg expected t =
  Alcotest.(check (list (float 1e-9))) msg expected (Tensor.to_float_list t)

let test_vector_add () =
  let g = Fixtures.vector_add () in
  let a = farr [| 5 |] (fun i -> float_of_int (List.hd i)) in
  let b = farr [| 5 |] (fun _ -> 100.) in
  let c = Tensor.create f64 [| 5 |] in
  let stats =
    Exec.run g ~symbols:[ ("N", 5) ] ~args:[ ("A", a); ("B", b); ("C", c) ]
  in
  check_floats "C" [ 100.; 101.; 102.; 103.; 104. ] c;
  Alcotest.(check int) "tasklet executions" 5
    stats.R.r_counters.R.tasklet_execs;
  Alcotest.(check int) "map iterations" 5 stats.R.r_counters.R.map_iterations

let test_matmul_mapreduce () =
  let g = Fixtures.matmul_mapreduce () in
  let m, n, k = (3, 4, 5) in
  let a = farr [| m; k |] (fun idx -> match idx with [ i; j ] -> float_of_int ((i * k) + j) | _ -> 0.) in
  let b = farr [| k; n |] (fun idx -> match idx with [ i; j ] -> float_of_int (i - j) | _ -> 0.) in
  let c = Tensor.create f64 [| m; n |] in
  ignore
    (Exec.run g
       ~symbols:[ ("M", m); ("N", n); ("K", k) ]
       ~args:[ ("A", a); ("B", b); ("C", c) ]);
  (* reference *)
  let expect = ref [] in
  for i = m - 1 downto 0 do
    for j = n - 1 downto 0 do
      let acc = ref 0. in
      for kk = 0 to k - 1 do
        acc :=
          !acc
          +. (float_of_int ((i * k) + kk) *. float_of_int (kk - j))
      done;
      expect := !acc :: !expect
    done
  done;
  check_floats "C = A@B" !expect c

let test_matmul_wcr () =
  let g = Fixtures.matmul_wcr () in
  let m, n, k = (4, 3, 6) in
  let a = farr [| m; k |] (fun idx -> match idx with [ i; j ] -> sin (float_of_int ((i * 7) + j)) | _ -> 0.) in
  let b = farr [| k; n |] (fun idx -> match idx with [ i; j ] -> cos (float_of_int (i + (3 * j))) | _ -> 0.) in
  let c = Tensor.create f64 [| m; n |] in
  ignore
    (Exec.run g
       ~symbols:[ ("M", m); ("N", n); ("K", k) ]
       ~args:[ ("A", a); ("B", b); ("C", c) ]);
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for kk = 0 to k - 1 do
        acc :=
          !acc
          +. (T.to_float (Tensor.get a [ i; kk ])
              *. T.to_float (Tensor.get b [ kk; j ]))
      done;
      if Float.abs (!acc -. T.to_float (Tensor.get c [ i; j ])) > 1e-9 then
        ok := false
    done
  done;
  Alcotest.(check bool) "WCR matmul correct" true !ok

let test_laplace () =
  let g = Fixtures.laplace () in
  let n = 16 and t = 10 in
  let a =
    farr [| 2; n |] (fun idx ->
        match idx with
        | [ 0; i ] -> float_of_int (i * i)
        | _ -> 0.)
  in
  ignore (Exec.run g ~symbols:[ ("N", n); ("T", t) ] ~args:[ ("A", a) ]);
  (* reference: t steps of the second-difference stencil *)
  let cur = Array.init n (fun i -> float_of_int (i * i)) in
  let buf = [| cur; Array.make n 0. |] in
  for step = 0 to t - 1 do
    let src = buf.(step mod 2) and dst = buf.((step + 1) mod 2) in
    for i = 1 to n - 2 do
      dst.(i) <- src.(i - 1) -. (2. *. src.(i)) +. src.(i + 1)
    done
  done;
  let final = buf.(t mod 2) in
  let got = Tensor.view a ~starts:[| t mod 2; 0 |] ~counts:[| 1; n |] ~steps:[| 1; 1 |] in
  (* interior only: boundaries of the inactive row are never written *)
  let got_l = Tensor.to_float_list got in
  List.iteri
    (fun i v ->
      if i >= 1 && i <= n - 2 then
        Alcotest.(check (float 1e-9)) (Fmt.str "A[%d]" i) final.(i) v)
    got_l

let test_spmv () =
  let g = Fixtures.spmv () in
  (* 3x4 CSR matrix:
       row 0: (0, 1.0) (2, 2.0)
       row 1: (1, 3.0)
       row 2: (0, 4.0) (3, 5.0) *)
  let row = iarr [| 4 |] (fun i -> [| 0; 2; 3; 5 |].(List.hd i)) in
  let col = iarr [| 5 |] (fun i -> [| 0; 2; 1; 0; 3 |].(List.hd i)) in
  let v = farr [| 5 |] (fun i -> [| 1.; 2.; 3.; 4.; 5. |].(List.hd i)) in
  let x = farr [| 4 |] (fun i -> float_of_int (1 + List.hd i)) in
  let b = Tensor.create f64 [| 3 |] in
  ignore
    (Exec.run g
       ~symbols:[ ("H", 3); ("W", 4); ("nnz", 5) ]
       ~args:
         [ ("A_row", row); ("A_col", col); ("A_val", v); ("x", x); ("b", b) ]);
  check_floats "b = Ax" [ 7.; 6.; 24. ] b

let test_fibonacci () =
  let g = Fixtures.fibonacci () in
  let rec fib n = if n <= 2 then 1 else fib (n - 1) + fib (n - 2) in
  List.iter
    (fun n ->
      let nt = iarr [||] (fun _ -> n) in
      let out = Tensor.create i64 [||] in
      let stats =
        Exec.run g ~symbols:[ ("P", 4) ] ~args:[ ("N", nt); ("out", out) ]
      in
      Alcotest.(check int)
        (Fmt.str "fib(%d)" n)
        (fib n)
        (T.to_int (Tensor.get_scalar out));
      Alcotest.(check bool) "streams drained" true
        (stats.R.r_counters.R.stream_pops > 0))
    [ 1; 2; 5; 10 ]

let test_branching () =
  let g = Fixtures.branching () in
  let run a b =
    let at = farr [||] (fun _ -> a) and bt = farr [||] (fun _ -> b) in
    let c = Tensor.create f64 [||] in
    let ci = Tensor.create i64 [||] in
    ignore
      (Exec.run g ~args:[ ("A", at); ("B", bt); ("C", c); ("Ci", ci) ]);
    T.to_float (Tensor.get_scalar c)
  in
  (* 2+1=3 <= 5 -> doubled *)
  Alcotest.(check (float 1e-9)) "doubled" 6. (run 2. 1.);
  (* 4+3=7 > 5 -> halved *)
  Alcotest.(check (float 1e-9)) "halved" 3.5 (run 4. 3.)

let test_histogram () =
  let g = Fixtures.histogram () in
  let h, w, bins = (8, 8, 8) in
  let img =
    farr [| h; w |] (fun idx ->
        match idx with
        | [ i; j ] -> float_of_int (((i * w) + j) mod 8) /. 8.
        | _ -> 0.)
  in
  let hist = Tensor.create i64 [| bins |] in
  ignore
    (Exec.run g
       ~symbols:[ ("H", h); ("W", w); ("B", bins) ]
       ~args:[ ("image", img); ("hist", hist) ]);
  check_floats "uniform bins" (List.init 8 (fun _ -> 8.)) hist

let test_nested_sdfg () =
  let g = Fixtures.nested_loop () in
  let data = farr [| 4 |] (fun i -> [| 0.5; 1.0; 7.9; 16.0 |].(List.hd i)) in
  let counts = Tensor.create i64 [| 4 |] in
  ignore
    (Exec.run g ~symbols:[ ("N", 4) ]
       ~args:[ ("data", data); ("counts", counts) ]);
  (* halvings until < 1: 0.5->0; 1.0->1; 7.9->3; 16.0->5 *)
  check_floats "halving counts" [ 0.; 1.; 3.; 5. ] counts

(* property: map execution order does not matter — the interpreter result
   equals a reference loop for random inputs *)
let prop_vadd_random =
  QCheck2.Test.make ~count:50 ~name:"vector add matches reference"
    QCheck2.Gen.(list_size (int_range 1 20) (float_range (-100.) 100.))
    (fun xs ->
      let n = List.length xs in
      let g = Fixtures.vector_add () in
      let a = farr [| n |] (fun i -> List.nth xs (List.hd i)) in
      let b = farr [| n |] (fun i -> Float.of_int (List.hd i)) in
      let c = Tensor.create f64 [| n |] in
      ignore
        (Exec.run g ~symbols:[ ("N", n) ]
           ~args:[ ("A", a); ("B", b); ("C", c) ]);
      List.for_all2
        (fun got (i, x) -> Float.abs (got -. (x +. float_of_int i)) < 1e-9)
        (Tensor.to_float_list c)
        (List.mapi (fun i x -> (i, x)) xs))

let prop_histogram_counts =
  QCheck2.Test.make ~count:30 ~name:"histogram total equals pixel count"
    QCheck2.Gen.(int_range 1 10)
    (fun h ->
      let g = Fixtures.histogram () in
      let img =
        Tensor.init f64 [| h; h |] (fun idx ->
            T.F
              (Float.rem
                 (float_of_int ((List.hd idx * 13) + (List.nth idx 1 * 7)))
                 8.
               /. 8.))
      in
      let hist = Tensor.create i64 [| 8 |] in
      ignore
        (Exec.run g
           ~symbols:[ ("H", h); ("W", h); ("B", 8) ]
           ~args:[ ("image", img); ("hist", hist) ]);
      let total =
        List.fold_left ( +. ) 0. (Tensor.to_float_list hist)
      in
      int_of_float total = h * h)

let suite =
  [ ("vector add (Fig. 6)", `Quick, test_vector_add);
    ("map-reduce matmul (Fig. 9b)", `Quick, test_matmul_mapreduce);
    ("WCR matmul", `Quick, test_matmul_wcr);
    ("Laplace time loop (Fig. 2)", `Quick, test_laplace);
    ("SpMV with indirection (Fig. 4)", `Quick, test_spmv);
    ("Fibonacci consume scope (Fig. 8)", `Quick, test_fibonacci);
    ("data-dependent branching (Fig. 10a)", `Quick, test_branching);
    ("histogram with WCR", `Quick, test_histogram);
    ("nested SDFG loop (Fig. 10b)", `Quick, test_nested_sdfg) ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_vadd_random; prop_histogram_counts ]

(* --- interpreter edge cases --------------------------------------------------- *)

let test_stream_fifo_order () =
  (* a map pushes 0..N-1 into a stream; draining preserves FIFO order
     within the sequential interpreter *)
  let g, st = Builder.Build.single_state ~symbols:[ "N" ] "fifo" in
  let n = E.sym "N" in
  Sdfg_ir.Sdfg.add_array g "out" ~shape:[ n ] ~dtype:f64;
  Sdfg_ir.Sdfg.add_stream g "S" ~dtype:f64;
  ignore
    (Builder.Build.mapped_tasklet g st ~name:"push" ~params:[ "i" ]
       ~ranges:[ Symbolic.Subset.range E.zero (E.sub n E.one) ]
       ~ins:[]
       ~outs:
         [ Builder.Build.out_ ~dynamic:true "s" "S"
             [ Symbolic.Subset.index E.zero ] ]
       ~code:(`Src "s = i") ());
  let drain = Sdfg_ir.Sdfg.add_state g ~label:"drain" () in
  ignore
    (Sdfg_ir.Sdfg.add_transition g
       ~src:(Sdfg_ir.State.id (Sdfg_ir.Sdfg.start_state g))
       ~dst:(Sdfg_ir.State.id drain) ());
  let s_acc = Builder.Build.access drain "S" in
  let o_acc = Builder.Build.access drain "out" in
  Builder.Build.edge drain
    ~memlet:(Sdfg_ir.Memlet.dyn "S" [ Symbolic.Subset.index E.zero ])
    ~src:s_acc ~dst:o_acc ();
  ignore (Builder.Build.finalize g);
  let out = Tensor.create f64 [| 6 |] in
  ignore (Exec.run g ~symbols:[ ("N", 6) ] ~args:[ ("out", out) ]);
  check_floats "FIFO order" [ 0.; 1.; 2.; 3.; 4.; 5. ] out

let test_max_states_guard () =
  (* an infinite loop in the state machine is caught by the budget *)
  let g = Sdfg_ir.Sdfg.create "spin" in
  let s0 = Sdfg_ir.Sdfg.add_state g ~label:"spin" () in
  ignore
    (Sdfg_ir.Sdfg.add_transition g ~src:(Sdfg_ir.State.id s0)
       ~dst:(Sdfg_ir.State.id s0) ());
  (match
     Exec.run ~config:(Exec.Config.with_max_states 100 Exec.Config.default) g
   with
  | exception Exec.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error for unbounded loop")

let test_missing_container_error () =
  let g = Fixtures.vector_add () in
  (* run with an argument of the wrong shape: the first out-of-bounds
     access raises *)
  let a = Tensor.create f64 [| 3 |] in
  let b = Tensor.create f64 [| 8 |] in
  let c = Tensor.create f64 [| 8 |] in
  match
    Exec.run g ~symbols:[ ("N", 8) ] ~args:[ ("A", a); ("B", b); ("C", c) ]
  with
  | exception Tensor.Bounds _ -> ()
  | _ -> Alcotest.fail "expected Bounds for undersized argument"

let test_external_tasklet () =
  (* an External tasklet dispatches to its registered native
     implementation (paper Fig. 5's BLAS-call pattern) *)
  let g, st = Builder.Build.single_state ~symbols:[ "N" ] "ext" in
  let n = E.sym "N" in
  Sdfg_ir.Sdfg.add_array g "X" ~shape:[ n ] ~dtype:f64;
  Sdfg_ir.Sdfg.add_array g "Y" ~shape:[ n ] ~dtype:f64;
  ignore
    (Builder.Build.simple_tasklet g st ~name:"blas_dscal"
       ~ins:[ Builder.Build.in_ "x" "X" [ Symbolic.Subset.full n ] ]
       ~outs:[ Builder.Build.out_ "y" "Y" [ Symbolic.Subset.full n ] ]
       ~code:(`External ("CPP", "cblas_dscal(N, 2.0, x, 1);"))
       ());
  ignore (Builder.Build.finalize g);
  Exec.register_external "blas_dscal" (fun bindings ->
      match List.assoc "x" bindings, List.assoc "y" bindings with
      | Tasklang.Eval.Buffer (get, _), Tasklang.Eval.Buffer (_, set) ->
        for i = 0 to 4 do
          set [ i ] (T.F (2. *. T.to_float (get [ i ])))
        done
      | _ -> failwith "bad bindings");
  let x = farr [| 5 |] (fun i -> float_of_int (List.hd i)) in
  let y = Tensor.create f64 [| 5 |] in
  ignore (Exec.run g ~symbols:[ ("N", 5) ] ~args:[ ("X", x); ("Y", y) ]);
  check_floats "external tasklet ran" [ 0.; 2.; 4.; 6.; 8. ] y;
  (* an unregistered external tasklet raises *)
  let g2, st2 = Builder.Build.single_state ~symbols:[ "N" ] "ext2" in
  Sdfg_ir.Sdfg.add_array g2 "X" ~shape:[ E.sym "N" ] ~dtype:f64;
  ignore
    (Builder.Build.simple_tasklet g2 st2 ~name:"not_registered"
       ~ins:[ Builder.Build.in_ "x" "X" [ Symbolic.Subset.full (E.sym "N") ] ]
       ~outs:[] ~code:(`External ("CPP", "whatever();")) ());
  ignore (Builder.Build.finalize g2);
  match Exec.run g2 ~symbols:[ ("N", 2) ] with
  | exception Exec.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error for unregistered external"

let suite =
  suite
  @ [ ("stream FIFO ordering", `Quick, test_stream_fifo_order);
      ("state-machine budget guard", `Quick, test_max_states_guard);
      ("bounds checking on bad arguments", `Quick, test_missing_container_error);
      ("external tasklets (Fig. 5)", `Quick, test_external_tasklet) ]
