(* Report serialization tests: golden-file rendering of a fixed report
   (JSON and Chrome trace), parse-back through Obs.Json, and a file
   round-trip of a real instrumented run.

   Regenerate the golden files after an intentional format change with
     SDFG_GOLDEN_UPDATE=test/golden dune test   (from the repo root) *)

module R = Obs.Report
module J = Obs.Json

(* A fully fixed report: every float is chosen to have a stable decimal
   rendering, so the golden files are byte-deterministic. *)
let fixed_report : R.t =
  { R.r_program = "golden";
    r_engine = "compiled";
    r_level = Obs.Collect.All;
    r_wall_s = 0.002;
    r_counters =
      { R.elements_moved = 12;
        tasklet_execs = 4;
        map_iterations = 4;
        stream_pushes = 1;
        stream_pops = 1;
        states_executed = 1;
        wcr_writes = 2 };
    r_timers =
      [ { R.t_kind = Obs.Collect.State;
          t_name = "main";
          t_count = 1;
          t_total_s = 0.0015;
          t_children =
            [ { R.t_kind = Obs.Collect.Map;
                t_name = "[i,j]";
                t_count = 1;
                t_total_s = 0.001;
                t_children =
                  [ { R.t_kind = Obs.Collect.Tasklet;
                      t_name = "mm";
                      t_count = 4;
                      t_total_s = 0.0005;
                      t_children = [] } ] } ] } ];
    r_coverage =
      Some
        { R.cov_states = 1; cov_compiled = 2; cov_fallback = 1;
          cov_kernels = []; cov_kernel_fallbacks = [] };
    r_parallel = None }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name actual =
  match Sys.getenv_opt "SDFG_GOLDEN_UPDATE" with
  | Some dir ->
    let oc = open_out (Filename.concat dir name) in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc actual)
  | None ->
    Alcotest.(check string)
      (name ^ " matches golden")
      (read_file (Filename.concat "golden" name))
      actual

let t_json_golden () =
  check_golden "report.json.golden" (J.to_string (R.to_json fixed_report))

let t_trace_golden () =
  check_golden "report.trace.golden" (J.to_string (R.to_trace fixed_report))

(* Accessor helpers over parsed JSON, failing loudly on shape breaks. *)
let get path j =
  List.fold_left
    (fun j key ->
      match J.member key j with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON field %S" key)
    j path

let get_int path j =
  match J.to_int_opt (get path j) with
  | Some n -> n
  | None -> Alcotest.failf "field %s is not an int" (String.concat "." path)

let get_str path j =
  match J.to_string_opt (get path j) with
  | Some s -> s
  | None -> Alcotest.failf "field %s is not a string" (String.concat "." path)

let t_json_parseback () =
  let j = J.parse (J.to_string (R.to_json fixed_report)) in
  Alcotest.(check string) "program" "golden" (get_str [ "program" ] j);
  Alcotest.(check string) "engine" "compiled" (get_str [ "engine" ] j);
  Alcotest.(check string) "instrument" "all" (get_str [ "instrument" ] j);
  Alcotest.(check int) "tasklet_execs" 4
    (get_int [ "counters"; "tasklet_execs" ] j);
  Alcotest.(check int) "wcr_writes" 2 (get_int [ "counters"; "wcr_writes" ] j);
  Alcotest.(check int) "coverage compiled" 2
    (get_int [ "plan_coverage"; "compiled_nodes" ] j);
  match J.to_list (get [ "timers" ] j) with
  | [ state ] ->
    Alcotest.(check string) "root timer" "main" (get_str [ "name" ] state);
    (match J.to_list (get [ "children" ] state) with
    | [ map ] ->
      Alcotest.(check string) "map timer" "[i,j]" (get_str [ "name" ] map);
      (match J.to_list (get [ "children" ] map) with
      | [ tk ] ->
        Alcotest.(check string) "tasklet timer" "mm" (get_str [ "name" ] tk);
        Alcotest.(check int) "tasklet count" 4 (get_int [ "count" ] tk)
      | l -> Alcotest.failf "expected 1 tasklet timer, got %d" (List.length l))
    | l -> Alcotest.failf "expected 1 map timer, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root timer, got %d" (List.length l)

let t_trace_parseback () =
  let j = J.parse (J.to_string (R.to_trace fixed_report)) in
  Alcotest.(check string) "displayTimeUnit" "ms"
    (get_str [ "displayTimeUnit" ] j);
  Alcotest.(check string) "otherData.program" "golden"
    (get_str [ "otherData"; "program" ] j);
  let events = J.to_list (get [ "traceEvents" ] j) in
  Alcotest.(check int) "three events" 3 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X" (get_str [ "ph" ] e);
      let dur =
        match J.to_float_opt (get [ "dur" ] e) with
        | Some d -> d
        | None -> Alcotest.fail "dur is not a number"
      in
      Alcotest.(check bool) "non-negative duration" true (dur >= 0.))
    events;
  Alcotest.(check (list string)) "event names (pre-order)"
    [ "main"; "[i,j]"; "mm" ]
    (List.map (fun e -> get_str [ "name" ] e) events)

(* A real instrumented run survives the save → parse round-trip and the
   parsed JSON agrees with the in-memory report. *)
let t_real_run_roundtrip () =
  let k = Workloads.Polybench.find "gemm" in
  let g = k.Workloads.Polybench.k_build () in
  let symbols = k.Workloads.Polybench.k_mini in
  let args = Interp.Profile.make_args ~symbols g in
  let r =
    Interp.Exec.run
      ~config:
        Interp.Exec.Config.(
          default |> with_engine Interp.Plan.compiled
          |> with_instrument Obs.Collect.All)
      ~symbols ~args g
  in
  let jpath = Filename.temp_file "report" ".json" in
  let tpath = Filename.temp_file "report" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove jpath; Sys.remove tpath)
    (fun () ->
      R.save_json r jpath;
      R.save_trace r tpath;
      let j = J.parse (read_file jpath) in
      Alcotest.(check string) "program" "gemm" (get_str [ "program" ] j);
      Alcotest.(check string) "engine" "compiled" (get_str [ "engine" ] j);
      Alcotest.(check int) "tasklet_execs round-trips"
        r.R.r_counters.R.tasklet_execs
        (get_int [ "counters"; "tasklet_execs" ] j);
      Alcotest.(check int) "elements_moved round-trips"
        r.R.r_counters.R.elements_moved
        (get_int [ "counters"; "elements_moved" ] j);
      let t = J.parse (read_file tpath) in
      let events = J.to_list (get [ "traceEvents" ] t) in
      Alcotest.(check bool) "trace has events" true (events <> []);
      List.iter
        (fun e ->
          Alcotest.(check string) "complete event" "X" (get_str [ "ph" ] e))
        events;
      (* the trace's root events are the report's root timers, in order *)
      let root_names =
        List.map (fun (tm : R.timer) -> tm.R.t_name) r.R.r_timers
      in
      let state_events =
        List.filter (fun e -> get_str [ "cat" ] e = "state") events
      in
      Alcotest.(check (list string)) "state events match root timers"
        root_names
        (List.map (fun e -> get_str [ "name" ] e) state_events))

let suite =
  [ ("report JSON golden", `Quick, t_json_golden);
    ("report trace golden", `Quick, t_trace_golden);
    ("report JSON parse-back", `Quick, t_json_parseback);
    ("report trace parse-back", `Quick, t_trace_parseback);
    ("instrumented run file round-trip", `Quick, t_real_run_roundtrip) ]
