(* Code generation tests: structural properties of the emitted CPU, CUDA
   and HLS sources (§4.3 step ❷). *)

module E = Symbolic.Expr

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let count haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub haystack i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let has msg code needle =
  Alcotest.(check bool) (msg ^ ": " ^ needle) true (contains code needle)

let test_cpu_codegen () =
  let code = Codegen.Cpu.generate (Fixtures.vector_add ()) in
  has "cpu" code "extern \"C\" void sdfg_vadd";
  has "cpu" code "for (long long i = 0; i <= (-1) + N; i += 1)";
  has "cpu" code "const double a = A[i];";
  has "cpu" code "c = (a + b);";
  has "cpu" code "C[i] = c;";
  has "cpu" code "goto __state_";
  (* CPU_Multicore maps become OpenMP parallel-for loops (§3.3) *)
  let par = Codegen.Cpu.generate (Workloads.Kernels.matmul ()) in
  Alcotest.(check bool) "omp parallel for emitted" true
    (count par "#pragma omp parallel for" >= 2)

let test_cpu_wcr_atomic () =
  let code = Codegen.Cpu.generate (Workloads.Kernels.matmul ()) in
  has "wcr" code "#pragma omp atomic";
  has "wcr" code "+="

let test_cpu_state_machine () =
  let code = Codegen.Cpu.generate (Fixtures.laplace ()) in
  (* time loop becomes guarded gotos with the symbol assignment *)
  has "laplace" code "long long t = 0;";
  has "laplace" code "if ((1 + t < T))";
  has "laplace" code "t = 1 + t;";
  has "laplace" code "__exit:"

let test_gpu_codegen () =
  let g = Fixtures.matmul_wcr () in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform;
  let code = Codegen.Gpu.generate g in
  has "gpu" code "__global__ void mm_wcr_kernel";
  has "gpu" code "blockIdx.x * blockDim.x + threadIdx.x";
  has "gpu" code "cudaMemcpyAsync";
  has "gpu" code "cudaMemcpyHostToDevice";
  has "gpu" code "cudaMemcpyDeviceToHost";
  has "gpu" code "cudaMalloc";
  has "gpu" code "atomicAdd";
  has "gpu" code "<<<__grid, __block";
  has "gpu" code "cudaStreamSynchronize"

let test_fpga_codegen () =
  let g = Fixtures.vector_add () in
  Transform.Xform.apply_first_exn g Transform.Device_xforms.fpga_transform;
  let code = Codegen.Fpga.generate g in
  has "fpga" code "#pragma HLS PIPELINE II=1";
  has "fpga" code "void vadd_module";
  has "fpga" code "#include <hls_stream.h>";
  has "fpga" code "memcpy_burst";
  Alcotest.(check bool) "resource report" true
    (contains (Codegen.Fpga.resource_report g) "modules=")

let test_fpga_streams () =
  (* stream containers become hls::stream FIFOs (§3.1) *)
  let g = Fixtures.fibonacci () in
  let code = Codegen.Fpga.generate g in
  has "fifo" code "hls::stream<long long> S";
  has "fifo" code "#pragma HLS STREAM variable=S"

let test_runtime_header () =
  let files =
    Codegen.generate Codegen.Target_cpu
      (Fixtures.vector_add ())
  in
  Alcotest.(check int) "two files" 2 (List.length files);
  let rt = List.assoc "sdfg_runtime.h" files in
  Alcotest.(check bool) "stream runtime" true (contains rt "struct stream")

let test_codegen_deterministic () =
  let gen () = Codegen.Cpu.generate (Fixtures.matmul_mapreduce ()) in
  Alcotest.(check string) "deterministic output" (gen ()) (gen ())

(* every Polybench kernel must produce code for all three targets *)
let test_polybench_all_targets () =
  List.iter
    (fun (k : Workloads.Polybench.kernel) ->
      let cpu = Codegen.Cpu.generate (k.k_build ()) in
      Alcotest.(check bool) (k.k_name ^ " cpu nonempty") true
        (String.length cpu > 200);
      let ggpu = k.k_build () in
      Transform.Xform.apply_first_exn ggpu Transform.Device_xforms.gpu_transform;
      let gpu = Codegen.Gpu.generate ggpu in
      Alcotest.(check bool) (k.k_name ^ " has kernel") true
        (contains gpu "__global__");
      let gf = k.k_build () in
      Transform.Xform.apply_first_exn gf Transform.Device_xforms.fpga_transform;
      let fpga = Codegen.Fpga.generate gf in
      Alcotest.(check bool) (k.k_name ^ " has module") true
        (contains fpga "#pragma HLS"))
    Workloads.Polybench.all

let suite =
  [ ("CPU: OpenMP loops + tasklet splicing", `Quick, test_cpu_codegen);
    ("CPU: WCR lowered to atomics", `Quick, test_cpu_wcr_atomic);
    ("CPU: state machine with gotos", `Quick, test_cpu_state_machine);
    ("GPU: kernels, copies, atomics", `Quick, test_gpu_codegen);
    ("FPGA: modules, pipelining, bursts", `Quick, test_fpga_codegen);
    ("FPGA: streams become FIFOs", `Quick, test_fpga_streams);
    ("runtime header emitted", `Quick, test_runtime_header);
    ("codegen is deterministic", `Quick, test_codegen_deterministic);
    ("all Polybench kernels, all targets", `Slow, test_polybench_all_targets) ]
