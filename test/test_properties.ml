(* Cross-cutting property-based tests (qcheck): invariants of the subset
   algebra, serialization, the tasklet language, and end-to-end
   transformation pipelines on randomly generated programs. *)

module E = Symbolic.Expr
module S = Symbolic.Subset
module T = Tasklang.Types
open Sdfg_ir
open Interp
open Builder

(* --- subset algebra ----------------------------------------------------- *)

let gen_crange =
  QCheck2.Gen.(
    map2
      (fun a len -> S.range (E.int a) (E.int (a + len)))
      (int_range 0 20) (int_range 0 10))

let prop_union_covers_both =
  QCheck2.Test.make ~count:300 ~name:"subset union covers both operands"
    QCheck2.Gen.(pair gen_crange gen_crange)
    (fun (a, b) ->
      let u = S.union [ a ] [ b ] in
      S.covers u [ a ] && S.covers u [ b ])

let prop_compose_offset_inverse =
  QCheck2.Test.make ~count:300
    ~name:"offset_by inverts compose for stride-1 ranges"
    QCheck2.Gen.(pair gen_crange gen_crange)
    (fun (outer, inner) ->
      let composed = S.compose [ outer ] [ inner ] in
      let back = S.offset_by composed ~origin:[ outer ] in
      S.equal back [ inner ])

let prop_volume_counts_points =
  QCheck2.Test.make ~count:300
    ~name:"symbolic volume equals enumerated point count"
    QCheck2.Gen.(
      pair gen_crange
        (map2
           (fun a s -> S.range ~stride:(E.int s) (E.int a) (E.int (a + 7)))
           (int_range 0 5) (int_range 1 3)))
    (fun (r1, r2) ->
      let s = [ r1; r2 ] in
      let vol = E.as_int_exn (S.volume s) in
      let pts = S.concrete_points (S.eval_list [] s) in
      vol = List.length pts)

let prop_propagation_sound =
  (* every concrete point of the per-iteration subset lies inside the
     propagated image, for all parameter values *)
  QCheck2.Test.make ~count:200 ~name:"memlet propagation is sound"
    QCheck2.Gen.(
      triple (int_range 0 5) (int_range 1 8) (int_range (-3) 3))
    (fun (lo, extent, shift) ->
      let prange = S.range (E.int lo) (E.int (lo + extent)) in
      let subset =
        [ S.range
            (E.add (E.sym "p") (E.int shift))
            (E.add (E.sym "p") (E.int (shift + 2))) ]
      in
      let image = S.propagate_param ~param:"p" ~prange subset in
      let ok = ref true in
      for p = lo to lo + extent do
        let inst = S.subst_list [ ("p", E.int p) ] subset in
        if not (S.covers image inst) then ok := false
      done;
      !ok)

(* --- serialization ------------------------------------------------------- *)

let gen_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map E.int (int_range (-9) 9); map E.sym (oneofl [ "N"; "i" ]) ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map2 E.add (go (n - 1)) (go (n - 1));
          map2 E.mul (go (n - 1)) (go (n - 1));
          map2 E.min_ (go (n - 1)) (go (n - 1)) ]
  in
  go 3

let prop_expr_sexp_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"expression serialization roundtrips"
    gen_expr
    (fun e ->
      let s = Serialize.sexp_to_string (Serialize.expr_to_sexp e) in
      E.equal (E.simplify (Serialize.expr_of_sexp (Serialize.parse_sexp s)))
        (E.simplify e))

(* --- tasklang: evaluation is deterministic and total on generated code --- *)

let gen_tasklet_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map (fun x -> Tasklang.Ast.Float_lit x) (float_range (-10.) 10.);
        return (Tasklang.Ast.Var "a");
        return (Tasklang.Ast.Var "b") ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          map2
            (fun x y -> Tasklang.Ast.Binop (Tasklang.Ast.Add, x, y))
            (go (n - 1)) (go (n - 1));
          map2
            (fun x y -> Tasklang.Ast.Binop (Tasklang.Ast.Mul, x, y))
            (go (n - 1)) (go (n - 1));
          map2
            (fun x y -> Tasklang.Ast.Binop (Tasklang.Ast.Min, x, y))
            (go (n - 1)) (go (n - 1)) ]
  in
  go 4

let prop_tasklet_print_parse_eval =
  QCheck2.Test.make ~count:300
    ~name:"tasklet print/parse preserves evaluation"
    QCheck2.Gen.(triple gen_tasklet_expr (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (e, av, bv) ->
      let eval e =
        T.to_float
          (Tasklang.Eval.eval_expression
             ~scalars:[ ("a", T.F av); ("b", T.F bv) ]
             e)
      in
      let printed = Tasklang.Ast.to_string [ Tasklang.Ast.Assign (Tasklang.Ast.Lvar "o", e) ] in
      match Tasklang.Parse.program printed with
      | [ Tasklang.Ast.Assign (_, e') ] ->
        let v = eval e and v' = eval e' in
        Float.equal v v' || Float.abs (v -. v') < 1e-9 *. Float.abs v
      | _ -> false)

(* --- end-to-end: random transformation pipelines preserve semantics ------- *)

let run_mm g =
  let m, n, k = (6, 5, 4) in
  let a =
    Tensor.init T.F64 [| m; k |] (fun idx ->
        T.F (sin (float_of_int (List.fold_left ( + ) 3 idx))))
  in
  let b =
    Tensor.init T.F64 [| k; n |] (fun idx ->
        T.F (cos (float_of_int (List.fold_left ( + ) 5 idx))))
  in
  let c = Tensor.create T.F64 [| m; n |] in
  ignore
    (Exec.run g
       ~symbols:[ ("M", m); ("N", n); ("K", k) ]
       ~args:[ ("A", a); ("B", b); ("C", c) ]);
  Tensor.to_float_list c

let pipeline_pool : (string * (Sdfg.t -> unit)) list =
  [ ("expand", fun g -> Transform.Xform.apply_first_exn g Transform.Map_xforms.map_expansion);
    ("tile2", fun g ->
      Transform.Xform.apply_first_exn g
        (Transform.Map_xforms.map_tiling_sized ~tile_sizes:[ 2 ]));
    ("tile3", fun g ->
      Transform.Xform.apply_first_exn g
        (Transform.Map_xforms.map_tiling_sized ~tile_sizes:[ 3 ]));
    ("acc", fun g ->
      Transform.Xform.apply_first_exn g Transform.Data_xforms.accumulate_transient);
    ("peel", fun g ->
      Transform.Xform.apply_first_exn g Transform.Control_xforms.reduce_peeling);
    ("fuse_states", fun g ->
      Transform.Xform.apply_first_exn g Transform.Fusion_xforms.state_fusion);
    ("gpu", fun g ->
      Transform.Xform.apply_first_exn g Transform.Device_xforms.gpu_transform) ]

let prop_random_pipelines =
  QCheck2.Test.make ~count:40
    ~name:"random transformation pipelines preserve GEMM results"
    QCheck2.Gen.(list_size (int_range 1 4) (int_range 0 (List.length pipeline_pool - 1)))
    (fun choices ->
      let reference = run_mm (Fixtures.matmul_wcr ()) in
      let g = Fixtures.matmul_wcr () in
      List.iter
        (fun i ->
          let _, f = List.nth pipeline_pool i in
          try f g with
          | Transform.Xform.Not_applicable _ -> ()
          | Defs.Invalid_sdfg _ -> ())
        choices;
      Validate.check g;
      let got = run_mm g in
      List.for_all2
        (fun a b -> Float.abs (a -. b) < 1e-9 *. (1. +. Float.abs a))
        reference got)

(* --- error paths: malformed inputs give stable, descriptive messages ----- *)

(* Same golden-file protocol as test_report.ml: compare against
   golden/<name>.golden, regenerate with SDFG_GOLDEN_UPDATE=<dir>. *)
let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name actual =
  match Sys.getenv_opt "SDFG_GOLDEN_UPDATE" with
  | Some dir ->
    let oc = open_out (Filename.concat dir name) in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc actual)
  | None ->
    Alcotest.(check string)
      (name ^ " matches golden")
      (read_file (Filename.concat "golden" name))
      actual

let message f =
  match f () with
  | _ -> Alcotest.fail "expected an exception, got a value"
  | exception Transform.Xform.Not_applicable m -> "Not_applicable: " ^ m
  | exception Defs.Invalid_sdfg m -> "Invalid_sdfg: " ^ m
  | exception Tensor.Bounds m -> "Bounds: " ^ m
  | exception Exec.Runtime_error m -> "Runtime_error: " ^ m

let t_err_malformed_chain () =
  (* comments and blanks are skipped; everything else must be
     "<name>" or "<name> <index>" *)
  Alcotest.(check int)
    "comments and blanks skipped" 1
    (List.length
       (Transform.Xform.chain_of_string "# header\n\nMapTiling 0\n"));
  check_golden "errors.chain.golden"
    (String.concat "\n"
       (List.map
          (fun line ->
            Fmt.str "%S -> %s" line
              (message (fun () -> Transform.Xform.chain_of_string line)))
          [ "MapTiling one two three"; "MapTiling notanint" ])
    ^ "\n")

let t_err_unknown_xform () =
  check_golden "errors.unknown_xform.golden"
    (message (fun () -> Transform.Xform.lookup "NoSuchTransformation") ^ "\n")

let t_err_duplicate_container () =
  check_golden "errors.duplicate_container.golden"
    (message (fun () ->
         let g = Sdfg.create "dup" in
         Sdfg.add_array g "A" ~shape:[ E.int 4 ] ~dtype:T.F64;
         Sdfg.add_array g "A" ~shape:[ E.int 8 ] ~dtype:T.F64)
    ^ "\n")

let t_err_oob_memlet () =
  (* a copy that walks past the end of its source container must fail
     with a located bounds message, not scribble or succeed *)
  let run_oob () =
    let g, st = Build.single_state "oob" in
    Sdfg.add_array g "x" ~shape:[ E.int 4 ] ~dtype:T.F64;
    Sdfg.add_array g "y" ~shape:[ E.int 8 ] ~dtype:T.F64;
    let a = Build.access st "x" and b = Build.access st "y" in
    Build.edge st
      ~memlet:(Memlet.simple "x" [ S.range (E.int 2) (E.int 5) ])
      ~src:a ~dst:b ();
    Validate.check g;
    let x = Tensor.create T.F64 [| 4 |] and y = Tensor.create T.F64 [| 8 |] in
    ignore (Exec.run ~symbols:[] ~args:[ ("x", x); ("y", y) ] g)
  in
  check_golden "errors.oob_memlet.golden" (message run_oob ^ "\n")

let error_path_tests =
  [ ("malformed chain lines are rejected", `Quick, t_err_malformed_chain);
    ("unknown transformation name is rejected", `Quick, t_err_unknown_xform);
    ("duplicate container name is rejected", `Quick, t_err_duplicate_container);
    ("out-of-bounds memlet fails loudly", `Quick, t_err_oob_memlet) ]

(* --- race-analysis verdict tables ---------------------------------------- *)

(* Pin the Races taxonomy on hand-built map scopes.  Soundness direction:
   a "parallel*" expectation here is a claim that chunked execution is
   safe — any false "safe" is a bug in the analysis, so the serial cases
   below must never drift to parallel. *)
module Races = Analysis.Races

let f64 = T.F64

(* One-map graph: a single Cpu_multicore mapped tasklet writing [outs]
   from [ins] over ranges [ranges]. *)
let one_map ?(symbols = [ "N" ]) ?(extra = fun _ -> ()) ~ranges ~params ~ins
    ~outs ~code () =
  let g, st = Build.single_state ~symbols "race_case" in
  let n = E.sym "N" in
  Sdfg.add_array g "A" ~shape:[ n ] ~dtype:f64;
  Sdfg.add_array g "B" ~shape:[ n ] ~dtype:f64;
  extra g;
  ignore
    (Build.mapped_tasklet g st ~name:"body" ~schedule:Defs.Cpu_multicore
       ~params ~ranges ~ins ~outs ~code ());
  Build.finalize g

let verdict_codes g =
  List.map (fun r -> Races.verdict_code r.Races.mr_verdict) (Races.analyze g)

let check_verdicts name expected g =
  Alcotest.(check (list string)) name expected (verdict_codes g)

let i = E.sym "i"
let nm1 = E.sub (E.sym "N") E.one

let t_races_disjoint_strided () =
  (* stride-2 map writing A[i] and A[i+1]: per-iteration span 2, chunk
     step 2 -> provably disjoint *)
  check_verdicts "stride-2 pair write is disjoint" [ "parallel" ]
    (one_map
       ~ranges:[ S.range ~stride:(E.int 2) E.zero (E.sub (E.sym "N") (E.int 2)) ]
       ~params:[ "i" ]
       ~ins:[ Build.in_elem "a" "B" [ i ] ]
       ~outs:
         [ Build.out_elem "o1" "A" [ i ];
           Build.out_elem "o2" "A" [ E.add i E.one ] ]
       ~code:(`Src "o1 = a\no2 = a") ());
  (* same double write at stride 1: adjacent iterations collide *)
  check_verdicts "stride-1 pair write overlaps" [ "overlapping-writes" ]
    (one_map
       ~ranges:[ S.range E.zero (E.sub (E.sym "N") (E.int 2)) ]
       ~params:[ "i" ]
       ~ins:[ Build.in_elem "a" "B" [ i ] ]
       ~outs:
         [ Build.out_elem "o1" "A" [ i ];
           Build.out_elem "o2" "A" [ E.add i E.one ] ]
       ~code:(`Src "o1 = a\no2 = a") ())

let t_races_halo () =
  (* read A[i-1..i+1], write A[i]: a flow dependency across iterations *)
  check_verdicts "3-point halo is a cross-iteration dependency"
    [ "read-write-overlap" ]
    (one_map
       ~ranges:[ S.range E.one (E.sub (E.sym "N") (E.int 2)) ]
       ~params:[ "i" ]
       ~ins:[ Build.in_ "a" "A" [ S.range (E.sub i E.one) (E.add i E.one) ] ]
       ~outs:[ Build.out_elem "o" "A" [ i ] ]
       ~code:(`Src "o = a[0] - 2.0 * a[1] + a[2]") ());
  (* the double-buffered Laplace fixture has the same shape *)
  check_verdicts "laplace halo forces sequential" [ "read-write-overlap" ]
    (Fixtures.laplace ())

let t_races_wcr () =
  (* reduction into one cell: conflicting, but commutative-with-identity
     WCR and never read -> per-domain private accumulators are safe *)
  check_verdicts "dot-product WCR accumulates" [ "parallel-accumulate" ]
    (one_map
       ~extra:(fun g -> Sdfg.add_array g "out" ~shape:[ E.one ] ~dtype:f64)
       ~ranges:[ S.range E.zero nm1 ] ~params:[ "i" ]
       ~ins:[ Build.in_elem "a" "A" [ i ]; Build.in_elem "b" "B" [ i ] ]
       ~outs:[ Build.out_elem ~wcr:Wcr.sum "o" "out" [ E.zero ] ]
       ~code:(`Src "o = a * b") ());
  (* WCR matmul: C[i,j] += ... is disjoint across the chunked i even
     though it carries a WCR - every k lands in one chunk *)
  (match verdict_codes (Fixtures.matmul_wcr ()) with
  | [ init_v; main_v ] ->
    Alcotest.(check string) "matmul init map" "parallel" init_v;
    Alcotest.(check string) "matmul WCR map is disjoint along i" "parallel"
      main_v
  | vs -> Alcotest.failf "expected 2 maps, got %d" (List.length vs));
  (* self-conflict: the histogram kernel reads hist and WCR-writes it *)
  (match verdict_codes (Fixtures.histogram ()) with
  | [ init_v; main_v ] ->
    Alcotest.(check string) "histogram init map" "parallel" init_v;
    Alcotest.(check string) "read + WCR write is serial" "wcr-read" main_v
  | vs -> Alcotest.failf "expected 2 maps, got %d" (List.length vs))

let t_races_private_transient () =
  (* scope-local staging buffer, fully written before read: each domain
     can hold a private copy *)
  let g, st = Build.single_state ~symbols:[ "N" ] "priv" in
  let n = E.sym "N" in
  Sdfg.add_array g "A" ~shape:[ n ] ~dtype:f64;
  Sdfg.add_array g "B" ~shape:[ n ] ~dtype:f64;
  Sdfg.add_array g "tmp" ~transient:true ~shape:[ E.int 2 ] ~dtype:f64;
  let entry, exit_ =
    Build.map_scope st ~schedule:Defs.Cpu_multicore ~params:[ "i" ]
      ~ranges:[ S.range E.zero nm1 ] ()
  in
  let stage =
    Build.tasklet st ~name:"stage"
      ~inputs:[ { Defs.k_name = "a"; k_dtype = f64; k_rank = 0 } ]
      ~outputs:[ { Defs.k_name = "t"; k_dtype = f64; k_rank = 1 } ]
      ~code:(`Src "t[0] = a\nt[1] = a * 2.0") ()
  in
  let use =
    Build.tasklet st ~name:"use"
      ~inputs:[ { Defs.k_name = "t"; k_dtype = f64; k_rank = 1 } ]
      ~outputs:[ { Defs.k_name = "o"; k_dtype = f64; k_rank = 0 } ]
      ~code:(`Src "o = t[0] + t[1]") ()
  in
  let a_acc = Build.access st "A" and b_acc = Build.access st "B" in
  let tmp_acc = Build.access st "tmp" in
  let tmp_full = Memlet.full "tmp" [ E.int 2 ] in
  Build.edge st ~dst_conn:"IN_A"
    ~memlet:(Memlet.element "A" [ i ]) ~src:a_acc ~dst:entry ();
  Build.edge st ~src_conn:"OUT_A" ~dst_conn:"a"
    ~memlet:(Memlet.element "A" [ i ]) ~src:entry ~dst:stage ();
  Build.edge st ~src_conn:"t" ~memlet:tmp_full ~src:stage ~dst:tmp_acc ();
  Build.edge st ~dst_conn:"t" ~memlet:tmp_full ~src:tmp_acc ~dst:use ();
  Build.edge st ~src_conn:"o" ~dst_conn:"IN_B"
    ~memlet:(Memlet.element "B" [ i ]) ~src:use ~dst:exit_ ();
  Build.edge st ~src_conn:"OUT_B"
    ~memlet:(Memlet.element "B" [ i ]) ~src:exit_ ~dst:b_acc ();
  ignore (Build.finalize g);
  match Races.analyze g with
  | [ r ] ->
    Alcotest.(check string) "verdict" "parallel-private"
      (Races.verdict_code r.mr_verdict);
    (match r.mr_verdict with
    | Races.Parallel { privatize; _ } ->
      Alcotest.(check (list string)) "privatized containers" [ "tmp" ]
        privatize
    | Races.Serial _ -> Alcotest.fail "expected Parallel")
  | rs -> Alcotest.failf "expected 1 map, got %d" (List.length rs)

let t_races_nested_opaque () =
  (* a nested SDFG hides its write footprint: always serial *)
  match Races.analyze (Fixtures.nested_loop ()) with
  | [ r ] -> (
    match Races.reason_of r.Races.mr_verdict with
    | Some reason ->
      Alcotest.(check string) "reason" "nested-sdfg" reason.Races.r_code
    | None -> Alcotest.fail "expected Serial for a nested SDFG in scope")
  | rs -> Alcotest.failf "expected 1 map, got %d" (List.length rs)

let t_races_corners () =
  (* zero-trip range: the verdict is a static property; an empty range
     still classifies (runtime no-ops either way) *)
  check_verdicts "zero-trip map still classifies" [ "parallel" ]
    (one_map ~symbols:[]
       ~ranges:[ S.range E.zero (E.int (-1)) ]
       ~params:[ "i" ]
       ~ins:[ Build.in_elem "a" "B" [ i ] ]
       ~outs:[ Build.out_elem "o" "A" [ i ] ]
       ~code:(`Src "o = a") ());
  (* non-positive stride: the analysis must clamp the chunk step to the
     sound minimum 1, so a 2-element write is NOT disjoint even though
     |stride| = 2 would cover it *)
  check_verdicts "negative stride clamps to step 1" [ "overlapping-writes" ]
    (one_map
       ~ranges:
         [ S.range ~stride:(E.int (-2)) E.zero (E.sub (E.sym "N") (E.int 2)) ]
       ~params:[ "i" ]
       ~ins:[ Build.in_elem "a" "B" [ i ] ]
       ~outs:
         [ Build.out_elem "o1" "A" [ i ];
           Build.out_elem "o2" "A" [ E.add i E.one ] ]
       ~code:(`Src "o1 = a\no2 = a") ());
  (* single-element write survives any stride *)
  check_verdicts "negative stride, disjoint single write" [ "parallel" ]
    (one_map
       ~ranges:[ S.range ~stride:(E.neg E.one) nm1 E.zero ]
       ~params:[ "i" ]
       ~ins:[ Build.in_elem "a" "B" [ i ] ]
       ~outs:[ Build.out_elem "o" "A" [ i ] ]
       ~code:(`Src "o = a") ())

let race_table_tests =
  [ ("disjoint strided writes", `Quick, t_races_disjoint_strided);
    ("overlapping halos", `Quick, t_races_halo);
    ("WCR conflicts and accumulation", `Quick, t_races_wcr);
    ("iteration-private transients", `Quick, t_races_private_transient);
    ("nested SDFGs are opaque", `Quick, t_races_nested_opaque);
    ("zero-trip and negative-stride corners", `Quick, t_races_corners) ]

(* --- predictive domain policy (ISSUE: make multicore pay) --------------- *)

module CP = Machine.Cost.Parallel

(* A fixed synthetic calibration for the pure-function properties: an
   8-core host so predictions are free to exceed 1 even when the test
   machine itself is single-core. *)
let policy_cal =
  { CP.cal_host_domains = 8;
    cal_fork_s = 10e-6;
    cal_chunk_s = 0.5e-6;
    cal_merge_s_per_elem = 5e-9;
    cal_kernel_iter_ns = [ ("copy", 1.0); ("contract", 2.0) ];
    cal_closure_iter_ns = 40.0;
    cal_efficiency = 0.9 }

let gen_kind =
  QCheck2.Gen.oneofl [ None; Some "copy"; Some "contract"; Some "unknown" ]

let prop_predict_deterministic =
  QCheck2.Test.make ~count:300
    ~name:"domain prediction is deterministic for a fixed calibration"
    QCheck2.Gen.(
      quad gen_kind (int_range 0 2_000_000) (int_range 1 4096)
        (int_range 0 100_000))
    (fun (kind, trips, inner, merge_elems) ->
      let p () =
        CP.predict ~cal:policy_cal ~max_domains:8 ~kind ~trips ~inner
          ~merge_elems ()
      in
      let a = p () and b = p () in
      a.CP.d_domains = b.CP.d_domains && a.CP.d_reason = b.CP.d_reason)

let prop_predict_monotone_trips =
  QCheck2.Test.make ~count:300
    ~name:"a larger map never predicts fewer domains"
    QCheck2.Gen.(
      quad gen_kind
        (pair (int_range 0 1_000_000) (int_range 0 1_000_000))
        (int_range 1 512) (int_range 0 50_000))
    (fun (kind, (t1, t2), inner, merge_elems) ->
      let lo = min t1 t2 and hi = max t1 t2 in
      let d trips =
        (CP.predict ~cal:policy_cal ~max_domains:8 ~kind ~trips ~inner
           ~merge_elems ())
          .CP.d_domains
      in
      d lo <= d hi)

(* A Serial race verdict must force the map sequential under the
   predictive policy — the decision never reaches the pricing model. *)
let racy_graph () =
  let g, st = Build.single_state ~symbols:[ "N" ] "racy" in
  Sdfg.add_array g "X" ~shape:[ E.int 4 ] ~dtype:T.F64;
  ignore
    (Build.mapped_tasklet g st ~name:"w" ~schedule:Defs.Cpu_multicore
       ~params:[ "i" ]
       ~ranges:[ S.range E.zero (E.sub (E.sym "N") E.one) ]
       ~ins:[]
       ~outs:[ Build.out_elem "x" "X" [ E.zero ] ]
       ~code:(`Src "x = 1.0") ());
  Build.finalize g

let t_predict_serial_forced () =
  let g = racy_graph () in
  let x = Tensor.create T.F64 [| 4 |] in
  let r =
    Exec.run g
      ~config:
        Exec.Config.(
          default |> with_engine Plan.compiled |> with_auto_domains ~cap:4)
      ~symbols:[ ("N", 64) ]
      ~args:[ ("X", x) ]
  in
  match r.Obs.Report.r_parallel with
  | None -> Alcotest.fail "expected a parallel section"
  | Some p -> (
    match p.Obs.Report.par_decisions with
    | [ d ] ->
      Alcotest.(check bool) "decision is forced" true d.Obs.Report.pm_forced;
      Alcotest.(check int) "forced maps run on 1 domain" 1
        d.Obs.Report.pm_domains;
      Alcotest.(check string) "policy reason" "forced-serial"
        d.Obs.Report.pm_reason;
      Alcotest.(check int) "every invocation counted forced"
        d.Obs.Report.pm_invocations p.Obs.Report.par_forced_seq
    | ds -> Alcotest.failf "expected one decision, got %d" (List.length ds))

let policy_tests =
  [ ("Serial verdict forces 1 domain under prediction", `Quick,
      t_predict_serial_forced) ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_covers_both;
      prop_compose_offset_inverse;
      prop_volume_counts_points;
      prop_propagation_sound;
      prop_expr_sexp_roundtrip;
      prop_tasklet_print_parse_eval;
      prop_random_pipelines;
      prop_predict_deterministic;
      prop_predict_monotone_trips ]
  @ error_path_tests @ race_table_tests @ policy_tests
