(* Tests for the symbolic expression and subset engine. *)

module E = Symbolic.Expr
module S = Symbolic.Subset

let check_expr msg expected e =
  Alcotest.(check string) msg expected (E.to_string (E.simplify e))

let test_constant_folding () =
  check_expr "2+3" "5" (E.add (E.int 2) (E.int 3));
  check_expr "2*3+1" "7" (E.add (E.mul (E.int 2) (E.int 3)) E.one);
  check_expr "x-x" "0" (E.sub (E.sym "x") (E.sym "x"));
  check_expr "x+x" "2*x" (E.add (E.sym "x") (E.sym "x"));
  check_expr "0*x" "0" (E.mul E.zero (E.sym "x"));
  check_expr "1*x" "x" (E.mul E.one (E.sym "x"))

let test_like_terms () =
  let x = E.sym "x" and y = E.sym "y" in
  check_expr "2x+3x" "5*x" (E.add (E.mul (E.int 2) x) (E.mul (E.int 3) x));
  check_expr "x*y - y*x" "0" (E.sub (E.mul x y) (E.mul y x));
  check_expr "2(x+1)-2x" "2"
    (E.sub (E.mul (E.int 2) (E.add x E.one)) (E.mul (E.int 2) x))

let test_div_mod () =
  Alcotest.(check int) "7/2" 3 (E.as_int_exn (E.div (E.int 7) (E.int 2)));
  Alcotest.(check int) "-7/2 floor" (-4)
    (E.as_int_exn (E.div (E.int (-7)) (E.int 2)));
  Alcotest.(check int) "-7 mod 2" 1
    (E.as_int_exn (E.modulo (E.int (-7)) (E.int 2)));
  check_expr "x/x" "1" (E.div (E.sym "x") (E.sym "x"));
  check_expr "(4x)/2" "2*x" (E.div (E.mul (E.int 4) (E.sym "x")) (E.int 2));
  check_expr "x mod x" "0" (E.modulo (E.sym "x") (E.sym "x"))

let test_min_max () =
  Alcotest.(check int) "min" 2 (E.as_int_exn (E.min_ (E.int 5) (E.int 2)));
  Alcotest.(check int) "max" 5 (E.as_int_exn (E.max_ (E.int 5) (E.int 2)));
  check_expr "min(x,x)" "x" (E.min_ (E.sym "x") (E.sym "x"))

let test_eval () =
  let e = E.add (E.mul (E.sym "N") (E.sym "i")) (E.sym "j") in
  Alcotest.(check int) "N*i+j" 42
    (E.eval_list [ ("N", 10); ("i", 4); ("j", 2) ] e);
  Alcotest.check_raises "unbound raises" (E.Unbound_symbol "z") (fun () ->
      ignore (E.eval_list [] (E.sym "z")))

let test_subst () =
  let e = E.add (E.sym "i") (E.sym "j") in
  check_expr "subst i->5" "5 + j" (E.subst1 "i" (E.int 5) e);
  let e2 = E.subst1 "i" (E.add (E.sym "k") E.one) e in
  Alcotest.(check int) "nested subst" 7
    (E.eval_list [ ("k", 3); ("j", 3) ] e2)

let test_free_syms () =
  let e = E.add (E.mul (E.sym "a") (E.sym "b")) (E.div (E.sym "a") (E.int 2)) in
  Alcotest.(check (list string)) "free syms" [ "a"; "b" ] (E.free_syms e)

let test_ceil_div () =
  Alcotest.(check int) "ceil 7/2" 4
    (E.as_int_exn (E.ceil_div (E.int 7) (E.int 2)));
  Alcotest.(check int) "ceil 8/2" 4
    (E.as_int_exn (E.ceil_div (E.int 8) (E.int 2)))

let test_bounds () =
  (* image of 2*i + 1 for i in [0, 9] is [1, 19] *)
  let env name =
    if name = "i" then Some { E.lo = E.zero; hi = E.int 9 } else None
  in
  let iv = E.bounds env (E.add (E.mul (E.int 2) (E.sym "i")) E.one) in
  Alcotest.(check int) "lo" 1 (E.as_int_exn iv.E.lo);
  Alcotest.(check int) "hi" 19 (E.as_int_exn iv.E.hi);
  (* negative coefficient flips the endpoints *)
  let iv2 = E.bounds env (E.mul (E.int (-1)) (E.sym "i")) in
  Alcotest.(check int) "neg lo" (-9) (E.as_int_exn iv2.E.lo);
  Alcotest.(check int) "neg hi" 0 (E.as_int_exn iv2.E.hi)

(* --- subsets -------------------------------------------------------------- *)

let test_subset_volume () =
  let s = [ S.range E.zero (E.int 9); S.range E.zero (E.int 4) ] in
  Alcotest.(check int) "10x5" 50 (E.as_int_exn (S.volume s));
  let strided = [ S.range ~stride:(E.int 2) E.zero (E.int 9) ] in
  Alcotest.(check int) "strided" 5 (E.as_int_exn (S.volume strided))

let test_subset_union () =
  let a = [ S.range (E.int 2) (E.int 5) ] in
  let b = [ S.range (E.int 4) (E.int 9) ] in
  let u = S.union a b in
  Alcotest.(check int) "union start" 2
    (E.as_int_exn (List.hd u).S.start);
  Alcotest.(check int) "union stop" 9 (E.as_int_exn (List.hd u).S.stop)

let test_subset_covers () =
  let big = [ S.range E.zero (E.int 9) ] in
  let small = [ S.range (E.int 2) (E.int 5) ] in
  Alcotest.(check bool) "covers" true (S.covers big small);
  Alcotest.(check bool) "not covers" false (S.covers small big);
  (* symbolic: identical endpoints prove coverage *)
  let n = E.sym "N" in
  let sym = [ S.range E.zero n ] in
  Alcotest.(check bool) "sym covers itself" true (S.covers sym sym)

let test_subset_compose () =
  (* outer = [10:20], inner = [2:4] relative -> [12:14] *)
  let outer = [ S.range (E.int 10) (E.int 20) ] in
  let inner = [ S.range (E.int 2) (E.int 4) ] in
  let c = S.compose outer inner in
  Alcotest.(check int) "start" 12 (E.as_int_exn (List.hd c).S.start);
  Alcotest.(check int) "stop" 14 (E.as_int_exn (List.hd c).S.stop)

let test_subset_offset () =
  let s = [ S.range (E.int 12) (E.int 14) ] in
  let origin = [ S.range (E.int 10) (E.int 20) ] in
  let o = S.offset_by s ~origin in
  Alcotest.(check int) "start" 2 (E.as_int_exn (List.hd o).S.start);
  Alcotest.(check int) "stop" 4 (E.as_int_exn (List.hd o).S.stop)

let test_propagate () =
  (* A[i, 0:K] over i in [0, N-1] -> A[0:N-1, 0:K] *)
  let n = E.sym "N" and k = E.sym "K" in
  let s = [ S.index (E.sym "i"); S.range E.zero (E.sub k E.one) ] in
  let prange = S.range E.zero (E.sub n E.one) in
  let p = S.propagate_param ~param:"i" ~prange s in
  Alcotest.(check string) "propagated" "[0:N, 0:K]" (S.to_string p);
  (* stencil: A[i-1:i+1] over i in [1, N-2] -> A[0:N-1] *)
  let sten =
    [ S.range (E.sub (E.sym "i") E.one) (E.add (E.sym "i") E.one) ]
  in
  let pr = S.range E.one (E.sub n (E.int 2)) in
  let p2 = S.propagate_param ~param:"i" ~prange:pr sten in
  Alcotest.(check string) "stencil" "[0:N]" (S.to_string p2)

let test_concrete () =
  let s = [ S.range (E.sym "a") (E.sym "b") ] in
  let c = S.eval_list [ ("a", 3); ("b", 7) ] s in
  Alcotest.(check int) "size" 5 (S.concrete_size c);
  Alcotest.(check (list (list int)))
    "points"
    [ [ 3 ]; [ 4 ]; [ 5 ]; [ 6 ]; [ 7 ] ]
    (S.concrete_points c)

(* --- property-based tests -------------------------------------------------- *)

let arb_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ map E.int (int_range (-20) 20);
        map E.sym (oneofl [ "x"; "y"; "z" ]) ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (2, map2 E.add (go (n - 1)) (go (n - 1)));
          (2, map2 E.mul (go (n - 1)) (go (n - 1)));
          (1, map2 E.min_ (go (n - 1)) (go (n - 1)));
          (1, map2 E.max_ (go (n - 1)) (go (n - 1)));
          (1, map2 E.sub (go (n - 1)) (go (n - 1))) ]
  in
  go 4

let env_gen =
  QCheck2.Gen.(
    map3
      (fun x y z -> [ ("x", x); ("y", y); ("z", z) ])
      (int_range (-10) 10) (int_range (-10) 10) (int_range (-10) 10))

let prop_simplify_preserves_value =
  QCheck2.Test.make ~count:500 ~name:"simplify preserves evaluation"
    QCheck2.Gen.(pair arb_expr env_gen)
    (fun (e, env) ->
      E.eval_list env e = E.eval_list env (E.simplify e))

let prop_subst_then_eval =
  QCheck2.Test.make ~count:500 ~name:"substitution commutes with evaluation"
    QCheck2.Gen.(pair arb_expr env_gen)
    (fun (e, env) ->
      let x_val = List.assoc "x" env in
      let e' = E.subst1 "x" (E.int x_val) e in
      E.eval_list env e = E.eval_list env e')

let prop_bounds_sound =
  QCheck2.Test.make ~count:500 ~name:"interval bounds contain all values"
    QCheck2.Gen.(triple arb_expr (int_range (-5) 5) (int_range 0 5))
    (fun (e, lo, extent) ->
      let hi = lo + extent in
      let benv name =
        if name = "x" then Some { E.lo = E.int lo; hi = E.int hi } else None
      in
      let iv = E.bounds benv e in
      (* check at 3 sample points, with other symbols fixed *)
      List.for_all
        (fun x ->
          let env = [ ("x", x); ("y", 2); ("z", -1) ] in
          let v = E.eval_list env e in
          let blo = E.eval_list env iv.E.lo and bhi = E.eval_list env iv.E.hi in
          blo <= v && v <= bhi)
        [ lo; hi; (lo + hi) / 2 ])

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simplify_preserves_value; prop_subst_then_eval; prop_bounds_sound ]

(* --- edge cases: degenerate ranges, floor div/mod, set images ---------- *)

let test_zero_trip_ranges () =
  (* start > stop with positive stride: an empty iteration space *)
  let cases =
    [ ("0:-1", S.range (E.int 0) (E.int (-1)));
      ("5:4", S.range (E.int 5) (E.int 4));
      ("3:0 stride 2", S.range ~stride:(E.int 2) (E.int 3) (E.int 0)) ]
  in
  List.iter
    (fun (name, r) ->
      Alcotest.(check int)
        (name ^ " has no points")
        0
        (List.length (S.concrete_points (S.eval_list [] [ r ]))))
    cases;
  Alcotest.(check int)
    "symbolic volume of 0:-1 is 0" 0
    (E.as_int_exn (S.volume [ S.range (E.int 0) (E.int (-1)) ]))

let test_negative_strides () =
  (* reversed ranges concretize with the stride clamped to 1 and an
     empty point set — they never alias forward iteration *)
  let r = S.range ~stride:(E.int (-1)) (E.int 5) (E.int 0) in
  let c = S.eval_list [] [ r ] in
  (match c with
  | [ cr ] ->
    Alcotest.(check int) "stride clamped" 1 cr.S.c_stride;
    Alcotest.(check int) "no points" 0 (List.length (S.concrete_points c))
  | _ -> Alcotest.fail "rank-1 expected");
  (* a negative-stride expression still evaluates with floor semantics *)
  Alcotest.(check int)
    "(0 - N) / 2 floors" (-3)
    (E.eval_list [ ("N", 5) ] (E.div (E.sub E.zero (E.sym "N")) (E.int 2)))

let test_floor_div_mod_table () =
  (* Python floor semantics, table-driven over sign combinations; the
     division identity b*(a/b) + a%b = a must hold everywhere *)
  let table =
    [ (7, 2, 3, 1); (-7, 2, -4, 1); (7, -2, -4, -1); (-7, -2, 3, -1);
      (6, 3, 2, 0); (-6, 3, -2, 0); (0, 5, 0, 0); (4, 7, 0, 4);
      (-4, 7, -1, 3) ]
  in
  List.iter
    (fun (a, b, q, m) ->
      Alcotest.(check int) (Fmt.str "%d / %d" a b) q (E.floordiv a b);
      Alcotest.(check int) (Fmt.str "%d %% %d" a b) m (E.floormod a b);
      Alcotest.(check int)
        (Fmt.str "identity at (%d, %d)" a b)
        a
        ((b * E.floordiv a b) + E.floormod a b);
      Alcotest.(check int)
        (Fmt.str "Div node %d/%d" a b)
        q
        (E.eval_list [] (E.div (E.int a) (E.int b)));
      Alcotest.(check int)
        (Fmt.str "Mod node %d%%%d" a b)
        m
        (E.eval_list [] (E.modulo (E.int a) (E.int b))))
    table

let test_div_mod_simplify () =
  check_expr "x/1" "x" (E.div (E.sym "x") E.one);
  check_expr "x%1" "0" (E.modulo (E.sym "x") E.one);
  check_expr "0/x is 0" "0" (E.div E.zero (E.sym "x"));
  (* simplification must preserve floor semantics on constants *)
  check_expr "-7/2 folds with floor" "-4" (E.div (E.int (-7)) (E.int 2));
  check_expr "-7%2 folds with floor" "1" (E.modulo (E.int (-7)) (E.int 2))

let test_set_image_corners () =
  let n = E.sym "N" in
  let prange = S.range E.zero (E.sub n E.one) in
  (* param unused: the range is untouched *)
  let fixed = S.range (E.int 2) (E.int 3) in
  Alcotest.(check bool)
    "unused param leaves range alone" true
    (S.equal
       (S.propagate_param ~param:"i" ~prange [ fixed ])
       [ fixed ]);
  (* identity image: i over [0, N-1] maps index i to 0:N-1 *)
  let img = S.propagate_param ~param:"i" ~prange [ S.index (E.sym "i") ] in
  Alcotest.(check bool)
    "identity image is the whole axis" true
    (S.equal img [ S.range E.zero (E.sub n E.one) ]);
  (* reversed image: N-1-i keeps min/max guards (the sign of N is
     unknown symbolically), but once N is fixed it must cover every
     concrete instance of the sweep *)
  let rev =
    S.propagate_param ~param:"i" ~prange
      [ S.index (E.sub (E.sub n E.one) (E.sym "i")) ]
  in
  let rev6 = S.subst_list [ ("N", E.int 6) ] rev in
  Alcotest.(check bool)
    "reversed image covers the axis at N=6" true
    (S.covers rev6 [ S.range E.zero (E.int 5) ]);
  (* strided image 2i over i in [0,3]: conservative overapproximation
     must cover every concrete instance *)
  let pr = S.range E.zero (E.int 3) in
  let img2 =
    S.propagate_param ~param:"i" ~prange:pr
      [ S.index (E.mul (E.int 2) (E.sym "i")) ]
  in
  for i = 0 to 3 do
    let inst = [ S.index (E.int (2 * i)) ] in
    if not (S.covers img2 inst) then
      Alcotest.failf "image misses instance i=%d" i
  done;
  (* zero-trip param range: image endpoints collapse to the bounds of an
     empty interval and volume evaluates to 0 *)
  let empty = S.range E.zero (E.int (-1)) in
  let img0 =
    S.propagate_param ~param:"i" ~prange:empty [ S.index (E.sym "i") ]
  in
  Alcotest.(check int)
    "image of empty param range is empty" 0
    (E.eval_list [] (S.volume img0))

let suite =
  [ ("constant folding", `Quick, test_constant_folding);
    ("like terms", `Quick, test_like_terms);
    ("div/mod", `Quick, test_div_mod);
    ("min/max", `Quick, test_min_max);
    ("eval", `Quick, test_eval);
    ("subst", `Quick, test_subst);
    ("free symbols", `Quick, test_free_syms);
    ("ceil_div", `Quick, test_ceil_div);
    ("interval bounds", `Quick, test_bounds);
    ("subset volume", `Quick, test_subset_volume);
    ("subset union", `Quick, test_subset_union);
    ("subset covers", `Quick, test_subset_covers);
    ("subset compose", `Quick, test_subset_compose);
    ("subset offset", `Quick, test_subset_offset);
    ("memlet propagation math", `Quick, test_propagate);
    ("concretization", `Quick, test_concrete);
    ("zero-trip ranges are empty", `Quick, test_zero_trip_ranges);
    ("negative strides clamp safely", `Quick, test_negative_strides);
    ("floor div/mod sign table", `Quick, test_floor_div_mod_table);
    ("div/mod simplification corners", `Quick, test_div_mod_simplify);
    ("set-image corners", `Quick, test_set_image_corners) ]
  @ List.map (fun (n, s, f) -> (n, s, f)) qcheck_tests
