(* Breadth-first search over SDFGs (paper §6.3, Fig. 16): the data-driven
   push algorithm with a frontier map, a stream for the next frontier,
   and a "fsz > 0; d++" state-machine loop.

     dune exec examples/bfs_example.exe *)

let () =
  List.iter
    (fun name ->
      let gr = Workloads.Graphs.load ~scale_shift:5 name in
      let depth_sdfg = Workloads.Graphs.run_bfs gr ~source:0 in
      let depth_ref = Workloads.Graphs.reference_bfs gr ~source:0 in
      let ok = ref true in
      let reached = ref 0 in
      Array.iteri
        (fun v d ->
          let got =
            Tasklang.Types.to_int (Interp.Tensor.get depth_sdfg [ v ])
          in
          if d >= 0 then incr reached;
          if got <> d then ok := false)
        depth_ref;
      Fmt.pr
        "%-10s V=%7d E=%8d avg-deg=%5.2f max-deg=%6d reached=%7d levels=%3d \
         -> SDFG BFS %s@."
        gr.Workloads.Graphs.gr_name gr.gr_nodes gr.gr_edges gr.gr_avg_degree
        gr.gr_max_degree !reached
        (Workloads.Graphs.bfs_levels gr ~source:0)
        (if !ok then "matches reference" else "MISMATCH"))
    [ "usa"; "osm-eur"; "soc-lj"; "twitter"; "kron21" ]
