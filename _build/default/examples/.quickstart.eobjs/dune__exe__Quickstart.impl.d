examples/quickstart.ml: Build Builder Codegen Defs Dot Fmt Interp List Machine Sdfg Sdfg_ir Symbolic Tasklang
