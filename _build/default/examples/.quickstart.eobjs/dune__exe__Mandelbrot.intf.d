examples/mandelbrot.mli:
