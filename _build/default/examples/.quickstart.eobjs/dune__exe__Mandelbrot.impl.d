examples/mandelbrot.ml: Bexp Build Builder Defs Fmt Interp List Memlet Sdfg Sdfg_ir State String Symbolic Tasklang
