examples/matmul_opt.mli:
