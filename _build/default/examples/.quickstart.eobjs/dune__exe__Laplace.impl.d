examples/laplace.ml: Bexp Build Builder Codegen Defs Fmt Interp List Machine Sdfg Sdfg_ir State String Symbolic Tasklang Transform
