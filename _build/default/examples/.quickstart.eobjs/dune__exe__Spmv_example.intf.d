examples/spmv_example.mli:
