examples/laplace.mli:
