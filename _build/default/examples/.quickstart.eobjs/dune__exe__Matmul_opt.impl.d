examples/matmul_opt.ml: Baselines Float Fmt Interp List Machine String Symbolic Tasklang Transform Workloads
