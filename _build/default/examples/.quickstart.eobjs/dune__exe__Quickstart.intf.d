examples/quickstart.mli:
