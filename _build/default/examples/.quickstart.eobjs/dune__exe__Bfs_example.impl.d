examples/bfs_example.ml: Array Fmt Interp List Tasklang Workloads
