examples/spmv_example.ml: Array Baselines Float Fmt Interp Machine Tasklang Workloads
