(* The Polybench benchmark suite over SDFGs (paper §5, Fig. 13).

   Each kernel is reimplemented as an SDFG exactly as the DaCe Python
   frontend would produce it: parallel loops become CPU-multicore maps,
   reductions become write-conflict-resolution memlets, loop-carried
   dependencies become state-machine loops, and triangular iteration
   spaces use guarded tasklets.  No optimizing transformations are
   applied here — §5 evaluates the representation itself ("assessing
   performance without transformations"). *)

module E = Symbolic.Expr
module S = Symbolic.Subset
open Sdfg_ir
open Builder
open Util

type kernel = {
  k_name : string;
  k_build : unit -> Sdfg.t;
  k_large : (string * int) list;   (* Polybench LARGE-equivalent sizes *)
  k_mini : (string * int) list;    (* interpreter-testable sizes *)
  k_hints : (string * int) list -> (string * float) list;
    (* cost-model hints (avg data-dependent trip counts) from sizes *)
}

let no_hints _ = []

let kernel ?(hints = no_hints) name build ~large ~mini =
  { k_name = name; k_build = build; k_large = large; k_mini = mini;
    k_hints = hints }

(* ---------- BLAS-like kernels --------------------------------------------- *)

(* C = alpha*A*B + beta*C *)
let gemm () =
  let g = Sdfg.create ~symbols:[ "NI"; "NJ"; "NK" ] "gemm" in
  let ni = s "NI" and nj = s "NJ" and nk = s "NK" in
  mat g "A" ni nk;
  mat g "B" nk nj;
  mat g "C" ni nj;
  let scale = Sdfg.add_state g ~label:"scale" () in
  pmap g scale ~name:"scale_c" ~params:[ "i"; "j" ] ~ranges:[ r0 ni; r0 nj ]
    ~ins:[ Build.in_elem "c" "C" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem "co" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "co = 1.2 * c");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g scale main;
  pmap g main ~name:"mm" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 ni; r0 nj; r0 nk ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "k" ];
        Build.in_elem "b" "B" [ s "k"; s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "c" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "c = 1.5 * a * b");
  Build.finalize g

(* D = A*B; E = C*D *)
let k2mm () =
  let g = Sdfg.create ~symbols:[ "NI"; "NJ"; "NK"; "NL" ] "two_mm" in
  let ni = s "NI" and nj = s "NJ" and nk = s "NK" and nl = s "NL" in
  mat g "A" ni nk;
  mat g "B" nk nj;
  mat g "C" nj nl;
  mat g "D" ni nl;
  tmat g "tmp" ni nj;
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_tmp" ~params:[ "i"; "j" ] ~ranges:[ r0 ni; r0 nj ]
    ~ins:[]
    ~outs:[ Build.out_elem "t" "tmp" [ s "i"; s "j" ] ]
    ~code:(`Src "t = 0.0");
  let mm1 = Sdfg.add_state g ~label:"mm1" () in
  chain g init mm1;
  pmap g mm1 ~name:"first" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 ni; r0 nj; r0 nk ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "k" ];
        Build.in_elem "b" "B" [ s "k"; s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "t" "tmp" [ s "i"; s "j" ] ]
    ~code:(`Src "t = 1.5 * a * b");
  let scale = Sdfg.add_state g ~label:"scale" () in
  chain g mm1 scale;
  pmap g scale ~name:"scale_d" ~params:[ "i"; "l" ] ~ranges:[ r0 ni; r0 nl ]
    ~ins:[ Build.in_elem "d" "D" [ s "i"; s "l" ] ]
    ~outs:[ Build.out_elem "dd" "D" [ s "i"; s "l" ] ]
    ~code:(`Src "dd = 1.2 * d");
  let mm2 = Sdfg.add_state g ~label:"mm2" () in
  chain g scale mm2;
  pmap g mm2 ~name:"second" ~params:[ "i"; "l"; "j" ]
    ~ranges:[ r0 ni; r0 nl; r0 nj ]
    ~ins:
      [ Build.in_elem "t" "tmp" [ s "i"; s "j" ];
        Build.in_elem "c" "C" [ s "j"; s "l" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "d" "D" [ s "i"; s "l" ] ]
    ~code:(`Src "d = t * c");
  Build.finalize g

(* E = A*B; F = C*D; G = E*F *)
let k3mm () =
  let g = Sdfg.create ~symbols:[ "NI"; "NJ"; "NK"; "NL"; "NM" ] "three_mm" in
  let ni = s "NI" and nj = s "NJ" and nk = s "NK" and nl = s "NL"
  and nm = s "NM" in
  mat g "A" ni nk;
  mat g "B" nk nj;
  mat g "C" nj nm;
  mat g "D" nm nl;
  mat g "G" ni nl;
  tmat g "Emat" ni nj;
  tmat g "Fmat" nj nl;
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_e" ~params:[ "i"; "j" ] ~ranges:[ r0 ni; r0 nj ]
    ~ins:[]
    ~outs:[ Build.out_elem "e" "Emat" [ s "i"; s "j" ] ]
    ~code:(`Src "e = 0.0");
  pmap g init ~name:"zero_f" ~params:[ "j"; "l" ] ~ranges:[ r0 nj; r0 nl ]
    ~ins:[]
    ~outs:[ Build.out_elem "f" "Fmat" [ s "j"; s "l" ] ]
    ~code:(`Src "f = 0.0");
  pmap g init ~name:"zero_g" ~params:[ "i"; "l" ] ~ranges:[ r0 ni; r0 nl ]
    ~ins:[]
    ~outs:[ Build.out_elem "gg" "G" [ s "i"; s "l" ] ]
    ~code:(`Src "gg = 0.0");
  let st1 = Sdfg.add_state g ~label:"mm1" () in
  chain g init st1;
  pmap g st1 ~name:"e_ab" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 ni; r0 nj; r0 nk ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "k" ];
        Build.in_elem "b" "B" [ s "k"; s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "e" "Emat" [ s "i"; s "j" ] ]
    ~code:(`Src "e = a * b");
  let st2 = Sdfg.add_state g ~label:"mm2" () in
  chain g st1 st2;
  pmap g st2 ~name:"f_cd" ~params:[ "j"; "l"; "m" ]
    ~ranges:[ r0 nj; r0 nl; r0 nm ]
    ~ins:
      [ Build.in_elem "c" "C" [ s "j"; s "m" ];
        Build.in_elem "d" "D" [ s "m"; s "l" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "f" "Fmat" [ s "j"; s "l" ] ]
    ~code:(`Src "f = c * d");
  let st3 = Sdfg.add_state g ~label:"mm3" () in
  chain g st2 st3;
  pmap g st3 ~name:"g_ef" ~params:[ "i"; "l"; "j" ]
    ~ranges:[ r0 ni; r0 nl; r0 nj ]
    ~ins:
      [ Build.in_elem "e" "Emat" [ s "i"; s "j" ];
        Build.in_elem "f" "Fmat" [ s "j"; s "l" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "gg" "G" [ s "i"; s "l" ] ]
    ~code:(`Src "gg = e * f");
  Build.finalize g

(* y = A^T (A x) *)
let atax () =
  let g = Sdfg.create ~symbols:[ "M"; "N" ] "atax" in
  let m = s "M" and n = s "N" in
  mat g "A" m n;
  vec g "x" n;
  vec g "y" n;
  tvec g "tmp" m;
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_tmp" ~params:[ "i" ] ~ranges:[ r0 m ] ~ins:[]
    ~outs:[ Build.out_elem "t" "tmp" [ s "i" ] ]
    ~code:(`Src "t = 0.0");
  pmap g init ~name:"zero_y" ~params:[ "j" ] ~ranges:[ r0 n ] ~ins:[]
    ~outs:[ Build.out_elem "yy" "y" [ s "j" ] ]
    ~code:(`Src "yy = 0.0");
  let ax = Sdfg.add_state g ~label:"ax" () in
  chain g init ax;
  pmap g ax ~name:"a_x" ~params:[ "i"; "j" ] ~ranges:[ r0 m; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "xx" "x" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "t" "tmp" [ s "i" ] ]
    ~code:(`Src "t = a * xx");
  let aty = Sdfg.add_state g ~label:"aty" () in
  chain g ax aty;
  pmap g aty ~name:"at_tmp" ~params:[ "i"; "j" ] ~ranges:[ r0 m; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "t" "tmp" [ s "i" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "yy" "y" [ s "j" ] ]
    ~code:(`Src "yy = a * t");
  Build.finalize g

(* s = A^T r ; q = A p — two concurrent components (§3.3) *)
let bicg () =
  let g = Sdfg.create ~symbols:[ "M"; "N" ] "bicg" in
  let m = s "M" and n = s "N" in
  mat g "A" n m;
  vec g "p" m;
  vec g "r" n;
  vec g "sv" m;
  vec g "q" n;
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_s" ~params:[ "j" ] ~ranges:[ r0 m ] ~ins:[]
    ~outs:[ Build.out_elem "so" "sv" [ s "j" ] ]
    ~code:(`Src "so = 0.0");
  pmap g init ~name:"zero_q" ~params:[ "i" ] ~ranges:[ r0 n ] ~ins:[]
    ~outs:[ Build.out_elem "qo" "q" [ s "i" ] ]
    ~code:(`Src "qo = 0.0");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g init main;
  pmap g main ~name:"s_atr" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "rr" "r" [ s "i" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "so" "sv" [ s "j" ] ]
    ~code:(`Src "so = a * rr");
  pmap g main ~name:"q_ap" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "pp" "p" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "qo" "q" [ s "i" ] ]
    ~code:(`Src "qo = a * pp");
  Build.finalize g

(* x1 += A y1 ; x2 += A^T y2 *)
let mvt () =
  let g = Sdfg.create ~symbols:[ "N" ] "mvt" in
  let n = s "N" in
  mat g "A" n n;
  vec g "x1" n;
  vec g "x2" n;
  vec g "y1" n;
  vec g "y2" n;
  let main = Sdfg.add_state g ~label:"main" () in
  pmap g main ~name:"x1_ay1" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "y" "y1" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "x" "x1" [ s "i" ] ]
    ~code:(`Src "x = a * y");
  pmap g main ~name:"x2_aty2" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "j"; s "i" ];
        Build.in_elem "y" "y2" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "x" "x2" [ s "i" ] ]
    ~code:(`Src "x = a * y");
  Build.finalize g

(* gemver: A' = A + u1 v1^T + u2 v2^T ; x = beta A'^T y + z ; w = alpha A' x *)
let gemver () =
  let g = Sdfg.create ~symbols:[ "N" ] "gemver" in
  let n = s "N" in
  mat g "A" n n;
  List.iter (fun v -> vec g v n)
    [ "u1"; "v1"; "u2"; "v2"; "w"; "x"; "y"; "z" ];
  let st1 = Sdfg.add_state g ~label:"rank2" () in
  pmap g st1 ~name:"rank_update" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "u1e" "u1" [ s "i" ];
        Build.in_elem "v1e" "v1" [ s "j" ];
        Build.in_elem "u2e" "u2" [ s "i" ];
        Build.in_elem "v2e" "v2" [ s "j" ] ]
    ~outs:[ Build.out_elem "ao" "A" [ s "i"; s "j" ] ]
    ~code:(`Src "ao = a + u1e * v1e + u2e * v2e");
  let st2 = Sdfg.add_state g ~label:"xbty" () in
  chain g st1 st2;
  pmap g st2 ~name:"x_atby" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "j"; s "i" ];
        Build.in_elem "yy" "y" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "xx" "x" [ s "i" ] ]
    ~code:(`Src "xx = 1.2 * a * yy");
  let st3 = Sdfg.add_state g ~label:"xz" () in
  chain g st2 st3;
  pmap g st3 ~name:"x_plus_z" ~params:[ "i" ] ~ranges:[ r0 n ]
    ~ins:
      [ Build.in_elem "xx" "x" [ s "i" ]; Build.in_elem "zz" "z" [ s "i" ] ]
    ~outs:[ Build.out_elem "xo" "x" [ s "i" ] ]
    ~code:(`Src "xo = xx + zz");
  let st4 = Sdfg.add_state g ~label:"w_ax" () in
  chain g st3 st4;
  pmap g st4 ~name:"w_aax" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "xx" "x" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "ww" "w" [ s "i" ] ]
    ~code:(`Src "ww = 1.5 * a * xx");
  Build.finalize g

(* y = alpha A x + beta B x *)
let gesummv () =
  let g = Sdfg.create ~symbols:[ "N" ] "gesummv" in
  let n = s "N" in
  mat g "A" n n;
  mat g "B" n n;
  vec g "x" n;
  vec g "y" n;
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_y" ~params:[ "i" ] ~ranges:[ r0 n ] ~ins:[]
    ~outs:[ Build.out_elem "yy" "y" [ s "i" ] ]
    ~code:(`Src "yy = 0.0");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g init main;
  pmap g main ~name:"summv" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "i"; s "j" ];
        Build.in_elem "b" "B" [ s "i"; s "j" ];
        Build.in_elem "xx" "x" [ s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "yy" "y" [ s "i" ] ]
    ~code:(`Src "yy = 1.5 * a * xx + 1.2 * b * xx");
  Build.finalize g

(* symm: C = alpha A B + beta C, A symmetric (triangular traversal) *)
let symm () =
  let g = Sdfg.create ~symbols:[ "M"; "N" ] "symm" in
  let m = s "M" and n = s "N" in
  mat g "A" m m;
  mat g "B" m n;
  mat g "C" m n;
  let main = Sdfg.add_state g ~label:"main" () in
  pmap g main ~name:"symm_mm" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 m; r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "a" "A" [ E.max_ (s "i") (s "k"); E.min_ (s "i") (s "k") ];
        Build.in_elem "b" "B" [ s "k"; s "j" ];
        Build.in_elem "c" "C" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "co" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "co = 1.5 * a * b + (0.2 * c if k == 0 else 0.0)")
    ;
  Build.finalize g

(* syrk: C = alpha A A^T + beta C (lower triangle) *)
let syrk () =
  let g = Sdfg.create ~symbols:[ "N"; "M" ] "syrk" in
  let n = s "N" and m = s "M" in
  mat g "A" n m;
  mat g "C" n n;
  let scale = Sdfg.add_state g ~label:"scale" () in
  pmap g scale ~name:"scale_c" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:[ Build.in_elem "c" "C" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem "co" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "co = 1.2 * c if j <= i else c");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g scale main;
  pmap g main ~name:"syrk_mm" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 n; r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "a1" "A" [ s "i"; s "k" ];
        Build.in_elem "a2" "A" [ s "j"; s "k" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum ~dynamic:true "co" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "if j <= i { co = 1.5 * a1 * a2 }");
  Build.finalize g

(* syr2k: C = alpha (A B^T + B A^T) + beta C *)
let syr2k () =
  let g = Sdfg.create ~symbols:[ "N"; "M" ] "syr2k" in
  let n = s "N" and m = s "M" in
  mat g "A" n m;
  mat g "B" n m;
  mat g "C" n n;
  let scale = Sdfg.add_state g ~label:"scale" () in
  pmap g scale ~name:"scale_c" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 n ]
    ~ins:[ Build.in_elem "c" "C" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem "co" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "co = 1.2 * c if j <= i else c");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g scale main;
  pmap g main ~name:"syr2k_mm" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 n; r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "a1" "A" [ s "i"; s "k" ];
        Build.in_elem "b1" "B" [ s "i"; s "k" ];
        Build.in_elem "a2" "A" [ s "j"; s "k" ];
        Build.in_elem "b2" "B" [ s "j"; s "k" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum ~dynamic:true "co" "C" [ s "i"; s "j" ] ]
    ~code:(`Src "if j <= i { co = 1.5 * (a1 * b2 + b1 * a2) }");
  Build.finalize g

(* trmm: B = alpha A^T B, A unit lower triangular *)
let trmm () =
  let g = Sdfg.create ~symbols:[ "M"; "N" ] "trmm" in
  let m = s "M" and n = s "N" in
  mat g "A" m m;
  mat g "B" m n;
  let main = Sdfg.add_state g ~label:"main" () in
  pmap g main ~name:"trmm_mm" ~params:[ "i"; "j"; "k" ]
    ~ranges:[ r0 m; r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "k"; s "i" ];
        Build.in_elem "b" "B" [ s "k"; s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum ~dynamic:true "bo" "B" [ s "i"; s "j" ] ]
    ~code:(`Src "if k > i { bo = a * b }");
  let scale = Sdfg.add_state g ~label:"scale" () in
  chain g main scale;
  pmap g scale ~name:"scale_b" ~params:[ "i"; "j" ] ~ranges:[ r0 m; r0 n ]
    ~ins:[ Build.in_elem "b" "B" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem "bo" "B" [ s "i"; s "j" ] ]
    ~code:(`Src "bo = 1.5 * b");
  Build.finalize g

(* doitgen: sum[r,q,p] = sum_s A[r,q,s] * C4[s,p], then copy back *)
let doitgen () =
  let g = Sdfg.create ~symbols:[ "NR"; "NQ"; "NP" ] "doitgen" in
  let nr = s "NR" and nq = s "NQ" and np = s "NP" in
  cube g "A" nr nq np;
  mat g "C4" np np;
  Sdfg.add_array g "sum" ~transient:true ~shape:[ nr; nq; np ] ~dtype:f64;
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_sum" ~params:[ "r"; "q"; "p" ]
    ~ranges:[ r0 nr; r0 nq; r0 np ]
    ~ins:[]
    ~outs:[ Build.out_elem "ss" "sum" [ s "r"; s "q"; s "p" ] ]
    ~code:(`Src "ss = 0.0");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g init main;
  pmap g main ~name:"contract" ~params:[ "r"; "q"; "p"; "sp" ]
    ~ranges:[ r0 nr; r0 nq; r0 np; r0 np ]
    ~ins:
      [ Build.in_elem "a" "A" [ s "r"; s "q"; s "sp" ];
        Build.in_elem "c4" "C4" [ s "sp"; s "p" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "ss" "sum" [ s "r"; s "q"; s "p" ] ]
    ~code:(`Src "ss = a * c4");
  let back = Sdfg.add_state g ~label:"writeback" () in
  chain g main back;
  pmap g back ~name:"copy_back" ~params:[ "r"; "q"; "p" ]
    ~ranges:[ r0 nr; r0 nq; r0 np ]
    ~ins:[ Build.in_elem "ss" "sum" [ s "r"; s "q"; s "p" ] ]
    ~outs:[ Build.out_elem "a" "A" [ s "r"; s "q"; s "p" ] ]
    ~code:(`Src "a = ss");
  Build.finalize g

(* ---------- data mining ----------------------------------------------------- *)

let covariance_like name extra_normalize () =
  let g = Sdfg.create ~symbols:[ "M"; "N" ] name in
  let m = s "M" and n = s "N" in
  mat g "data" n m;
  mat g "cov" m m;
  tvec g "mean" m;
  (if extra_normalize then tvec g "stddev" m);
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_mean" ~params:[ "j" ] ~ranges:[ r0 m ] ~ins:[]
    ~outs:[ Build.out_elem "mn" "mean" [ s "j" ] ]
    ~code:(`Src "mn = 0.0");
  let mean_st = Sdfg.add_state g ~label:"mean" () in
  chain g init mean_st;
  pmap g mean_st ~name:"mean_sum" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 m ]
    ~ins:[ Build.in_elem "d" "data" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem ~wcr:Wcr.sum "mn" "mean" [ s "j" ] ]
    ~code:(`Src "mn = d");
  let mean_div = Sdfg.add_state g ~label:"mean_div" () in
  chain g mean_st mean_div;
  pmap g mean_div ~name:"mean_norm" ~params:[ "j" ] ~ranges:[ r0 m ]
    ~ins:[ Build.in_elem "mn" "mean" [ s "j" ] ]
    ~outs:[ Build.out_elem "mo" "mean" [ s "j" ] ]
    ~code:(`Src "mo = mn / N");
  let center = Sdfg.add_state g ~label:"center" () in
  chain g mean_div center;
  pmap g center ~name:"subtract_mean" ~params:[ "i"; "j" ]
    ~ranges:[ r0 n; r0 m ]
    ~ins:
      [ Build.in_elem "d" "data" [ s "i"; s "j" ];
        Build.in_elem "mn" "mean" [ s "j" ] ]
    ~outs:[ Build.out_elem "dd" "data" [ s "i"; s "j" ] ]
    ~code:(`Src "dd = d - mn");
  let last = ref center in
  if extra_normalize then begin
    (* correlation also divides by the standard deviation *)
    let sd_zero = Sdfg.add_state g ~label:"sd_zero" () in
    chain g !last sd_zero;
    pmap g sd_zero ~name:"zero_sd" ~params:[ "j" ] ~ranges:[ r0 m ] ~ins:[]
      ~outs:[ Build.out_elem "sd" "stddev" [ s "j" ] ]
      ~code:(`Src "sd = 0.0");
    let sd_sum = Sdfg.add_state g ~label:"sd_sum" () in
    chain g sd_zero sd_sum;
    pmap g sd_sum ~name:"sd_acc" ~params:[ "i"; "j" ] ~ranges:[ r0 n; r0 m ]
      ~ins:[ Build.in_elem "d" "data" [ s "i"; s "j" ] ]
      ~outs:[ Build.out_elem ~wcr:Wcr.sum "sd" "stddev" [ s "j" ] ]
      ~code:(`Src "sd = d * d");
    let sd_fin = Sdfg.add_state g ~label:"sd_fin" () in
    chain g sd_sum sd_fin;
    pmap g sd_fin ~name:"sd_sqrt" ~params:[ "j" ] ~ranges:[ r0 m ]
      ~ins:[ Build.in_elem "sd" "stddev" [ s "j" ] ]
      ~outs:[ Build.out_elem "so" "stddev" [ s "j" ] ]
      ~code:(`Src "t = sqrt(sd / N)\nso = 1.0 if t <= 0.1 else t");
    let norm = Sdfg.add_state g ~label:"normalize" () in
    chain g sd_fin norm;
    pmap g norm ~name:"divide_sd" ~params:[ "i"; "j" ]
      ~ranges:[ r0 n; r0 m ]
      ~ins:
        [ Build.in_elem "d" "data" [ s "i"; s "j" ];
          Build.in_elem "sd" "stddev" [ s "j" ] ]
      ~outs:[ Build.out_elem "dd" "data" [ s "i"; s "j" ] ]
      ~code:(`Src "dd = d / (sqrt(N) * sd)");
    last := norm
  end;
  let czero = Sdfg.add_state g ~label:"cov_zero" () in
  chain g !last czero;
  pmap g czero ~name:"zero_cov" ~params:[ "j1"; "j2" ] ~ranges:[ r0 m; r0 m ]
    ~ins:[]
    ~outs:[ Build.out_elem "cc" "cov" [ s "j1"; s "j2" ] ]
    ~code:(`Src "cc = 0.0");
  let main = Sdfg.add_state g ~label:"main" () in
  chain g czero main;
  pmap g main ~name:"cov_mm" ~params:[ "j1"; "j2"; "i" ]
    ~ranges:[ r0 m; r0 m; r0 n ]
    ~ins:
      [ Build.in_elem "d1" "data" [ s "i"; s "j1" ];
        Build.in_elem "d2" "data" [ s "i"; s "j2" ] ]
    ~outs:
      [ Build.out_elem ~wcr:Wcr.sum ~dynamic:true "cc" "cov"
          [ s "j1"; s "j2" ] ]
    ~code:(`Src "if j2 <= j1 { cc = d1 * d2 / (N - 1.0) }");
  Build.finalize g

let covariance = covariance_like "covariance" false
let correlation = covariance_like "correlation" true

(* ---------- solvers ----------------------------------------------------------- *)

(* cholesky: sequential k loop; division map and trailing update *)
let cholesky () =
  let g = Sdfg.create ~symbols:[ "N" ] "cholesky" in
  let n = s "N" in
  mat g "A" n n;
  let pre, body = loop_state g ~sym:"k" ~lo:E.zero ~hi:n ~label:"kloop"
      (fun body ->
        let k = s "k" in
        (* A[k][k] = sqrt(A[k][k]) *)
        ignore
          (Build.simple_tasklet g body ~name:"diag_sqrt"
             ~ins:[ Build.in_elem "akk" "A" [ k; k ] ]
             ~outs:[ Build.out_elem "ao" "A" [ k; k ] ]
             ~code:(`Src "ao = sqrt(akk)") ());
        (* column scale: A[i][k] /= A[k][k], i > k *)
        pmap g body ~name:"col_scale" ~params:[ "i" ]
          ~ranges:[ rng (E.add k E.one) (E.sub n E.one) ]
          ~ins:
            [ Build.in_elem "aik" "A" [ s "i"; k ];
              Build.in_elem "akk" "A" [ k; k ] ]
          ~outs:[ Build.out_elem "ao" "A" [ s "i"; k ] ]
          ~code:(`Src "ao = aik / akk");
        (* trailing update: A[i][j] -= A[i][k]*A[j][k], k < j <= i *)
        pmap g body ~name:"trailing" ~params:[ "i"; "j" ]
          ~ranges:
            [ rng (E.add k E.one) (E.sub n E.one);
              rng (E.add k E.one) (E.sub n E.one) ]
          ~ins:
            [ Build.in_elem "aik" "A" [ s "i"; k ];
              Build.in_elem "ajk" "A" [ s "j"; k ];
              Build.in_elem "aij" "A" [ s "i"; s "j" ] ]
          ~outs:[ Build.out_elem ~dynamic:true "ao" "A" [ s "i"; s "j" ] ]
          ~code:(`Src "if j <= i { ao = aij - aik * ajk }"))
  in
  ignore pre;
  ignore body;
  Build.finalize g

(* lu decomposition: same skeleton, unnormalized *)
let lu () =
  let g = Sdfg.create ~symbols:[ "N" ] "lu" in
  let n = s "N" in
  mat g "A" n n;
  ignore
    (loop_state g ~sym:"k" ~lo:E.zero ~hi:n ~label:"kloop" (fun body ->
         let k = s "k" in
         pmap g body ~name:"col_scale" ~params:[ "i" ]
           ~ranges:[ rng (E.add k E.one) (E.sub n E.one) ]
           ~ins:
             [ Build.in_elem "aik" "A" [ s "i"; k ];
               Build.in_elem "akk" "A" [ k; k ] ]
           ~outs:[ Build.out_elem "ao" "A" [ s "i"; k ] ]
           ~code:(`Src "ao = aik / akk");
         pmap g body ~name:"trailing" ~params:[ "i"; "j" ]
           ~ranges:
             [ rng (E.add k E.one) (E.sub n E.one);
               rng (E.add k E.one) (E.sub n E.one) ]
           ~ins:
             [ Build.in_elem "aik" "A" [ s "i"; k ];
               Build.in_elem "akj" "A" [ k; s "j" ];
               Build.in_elem "aij" "A" [ s "i"; s "j" ] ]
           ~outs:[ Build.out_elem "ao" "A" [ s "i"; s "j" ] ]
           ~code:(`Src "ao = aij - aik * akj")));
  Build.finalize g

(* ludcmp: LU followed by forward/back substitution *)
let ludcmp () =
  let g = Sdfg.create ~symbols:[ "N" ] "ludcmp" in
  let n = s "N" in
  mat g "A" n n;
  vec g "b" n;
  vec g "x" n;
  tvec g "yv" n;
  let _, lu_body =
    loop_state g ~sym:"k" ~lo:E.zero ~hi:n ~label:"kloop" (fun body ->
        let k = s "k" in
        pmap g body ~name:"col_scale" ~params:[ "i" ]
          ~ranges:[ rng (E.add k E.one) (E.sub n E.one) ]
          ~ins:
            [ Build.in_elem "aik" "A" [ s "i"; k ];
              Build.in_elem "akk" "A" [ k; k ] ]
          ~outs:[ Build.out_elem "ao" "A" [ s "i"; k ] ]
          ~code:(`Src "ao = aik / akk");
        pmap g body ~name:"trailing" ~params:[ "i"; "j" ]
          ~ranges:
            [ rng (E.add k E.one) (E.sub n E.one);
              rng (E.add k E.one) (E.sub n E.one) ]
          ~ins:
            [ Build.in_elem "aik" "A" [ s "i"; k ];
              Build.in_elem "akj" "A" [ k; s "j" ];
              Build.in_elem "aij" "A" [ s "i"; s "j" ] ]
          ~outs:[ Build.out_elem "ao" "A" [ s "i"; s "j" ] ]
          ~code:(`Src "ao = aij - aik * akj"))
  in
  (* forward substitution y, then back substitution x (sequential rows) *)
  let fwd = Sdfg.add_state g ~label:"forward" () in
  chain_after_loop g ~body:lu_body ~sym:"k" ~hi:n fwd;
  smap g fwd ~name:"fwd_solve" ~params:[ "i" ] ~ranges:[ r0 n ]
    ~ins:
      [ Build.in_elem "bb" "b" [ s "i" ];
        Build.in_ "lrow" "A" [ S.index (s "i"); S.full n ];
        Build.in_ ~dynamic:true "yin" "yv" [ S.full n ] ]
    ~outs:[ Build.out_elem "yy" "yv" [ s "i" ] ]
    ~code:
      (`Src "acc = bb\nfor j in 0:i { acc = acc - lrow[j] * yin[j] }\nyy = acc");
  let bwd = Sdfg.add_state g ~label:"backward" () in
  chain g fwd bwd;
  smap g bwd ~name:"bwd_solve" ~params:[ "i" ] ~ranges:[ r0 n ]
    ~ins:
      [ Build.in_elem "yy" "yv" [ E.sub (E.sub n E.one) (s "i") ];
        Build.in_ "urow" "A" [ S.index (E.sub (E.sub n E.one) (s "i")); S.full n ];
        Build.in_ ~dynamic:true "xin" "x" [ S.full n ] ]
    ~outs:[ Build.out_elem "xx" "x" [ E.sub (E.sub n E.one) (s "i") ] ]
    ~code:
      (`Src
        "row = N - 1 - i\nacc = yy\nfor j in 0:i { acc = acc - urow[N - 1 - j] * xin[N - 1 - j] }\nxx = acc / urow[row]");
  Build.finalize g

(* durbin: Levinson-Durbin recursion (sequential k loop over vector ops) *)
let durbin () =
  let g = Sdfg.create ~symbols:[ "N" ] "durbin" in
  let n = s "N" in
  vec g "rv" n;
  vec g "y" n;
  tvec g "z" n;
  Sdfg.add_scalar g ~transient:true "alpha" ~dtype:f64;
  Sdfg.add_scalar g ~transient:true "beta" ~dtype:f64;
  let init = Sdfg.add_state g ~label:"init" () in
  ignore
    (Build.simple_tasklet g init ~name:"durbin_init"
       ~ins:[ Build.in_elem "r0" "rv" [ E.zero ] ]
       ~outs:
         [ Build.out_elem "y0" "y" [ E.zero ];
           Build.out_elem "a" "alpha" [ E.zero ];
           Build.out_elem "bt" "beta" [ E.zero ] ]
       ~code:(`Src "y0 = -r0\na = -r0\nbt = 1.0") ());
  let _, body =
    loop_state g ~sym:"k" ~lo:E.one ~hi:n ~label:"kloop" (fun body ->
        smap g body ~name:"durbin_step" ~params:[ "dummy" ]
          ~ranges:[ rng E.zero E.zero ]
          ~ins:
            [ Build.in_ ~dynamic:true "rr" "rv" [ S.full n ];
              Build.in_ ~dynamic:true "yin" "y" [ S.full n ];
              Build.in_elem "a" "alpha" [ E.zero ];
              Build.in_elem "bt" "beta" [ E.zero ] ]
          ~outs:
            [ Build.out_ ~dynamic:true "yo" "y" [ S.full n ];
              Build.out_elem "ao" "alpha" [ E.zero ];
              Build.out_elem "bo" "beta" [ E.zero ];
              Build.out_ ~dynamic:true "zo" "z" [ S.full n ] ]
          ~code:
            (`Src
              "b2 = (1.0 - a * a) * bt\n\
               acc = rr[k]\n\
               for j in 0:k { acc = acc + rr[k - j - 1] * yin[j] }\n\
               a2 = -acc / b2\n\
               for j in 0:k { zo[j] = yin[j] + a2 * yin[k - j - 1] }\n\
               for j in 0:k { yo[j] = zo[j] }\n\
               yo[k] = a2\n\
               ao = a2\n\
               bo = b2"))
  in
  ignore body;
  Build.finalize g

(* gramschmidt: sequential k loop with column reductions *)
let gramschmidt () =
  let g = Sdfg.create ~symbols:[ "M"; "N" ] "gramschmidt" in
  let m = s "M" and n = s "N" in
  mat g "A" m n;
  mat g "R" n n;
  mat g "Q" m n;
  Sdfg.add_scalar g ~transient:true "nrm" ~dtype:f64;
  ignore
    (loop_state g ~sym:"k" ~lo:E.zero ~hi:n ~label:"kloop" (fun body ->
         let k = s "k" in
         (* nrm = sqrt(sum A[:,k]^2); R[k][k] = nrm *)
         ignore
           (Build.simple_tasklet g body ~name:"zero_nrm" ~ins:[]
              ~outs:[ Build.out_elem "nz" "nrm" [ E.zero ] ]
              ~code:(`Src "nz = 0.0") ());
         pmap g body ~name:"col_norm" ~params:[ "i" ] ~ranges:[ r0 m ]
           ~ins:[ Build.in_elem "a" "A" [ s "i"; k ] ]
           ~outs:[ Build.out_elem ~wcr:Wcr.sum "nz" "nrm" [ E.zero ] ]
           ~code:(`Src "nz = a * a");
         ignore
           (Build.simple_tasklet g body ~name:"rkk"
              ~ins:[ Build.in_elem "nz" "nrm" [ E.zero ] ]
              ~outs:[ Build.out_elem "rr" "R" [ k; k ] ]
              ~code:(`Src "rr = sqrt(nz)") ());
         (* Q[:,k] = A[:,k] / R[k][k] *)
         pmap g body ~name:"q_col" ~params:[ "i" ] ~ranges:[ r0 m ]
           ~ins:
             [ Build.in_elem "a" "A" [ s "i"; k ];
               Build.in_elem "rr" "R" [ k; k ] ]
           ~outs:[ Build.out_elem "q" "Q" [ s "i"; k ] ]
           ~code:(`Src "q = a / rr");
         (* for j > k: R[k][j] = Q[:,k] . A[:,j]; A[:,j] -= Q[:,k] R[k][j] *)
         pmap g body ~name:"r_row" ~params:[ "j" ]
           ~ranges:[ rng (E.add k E.one) (E.sub n E.one) ]
           ~ins:
             [ Build.in_ "qcol" "Q" [ S.full m; S.index k ];
               Build.in_ "acol" "A" [ S.full m; S.index (s "j") ] ]
           ~outs:[ Build.out_elem "rr" "R" [ k; s "j" ] ]
           ~code:
             (`Src "acc = 0.0\nfor i in 0:M { acc = acc + qcol[i] * acol[i] }\nrr = acc");
         pmap g body ~name:"a_update" ~params:[ "i"; "j" ]
           ~ranges:[ r0 m; rng (E.add k E.one) (E.sub n E.one) ]
           ~ins:
             [ Build.in_elem "a" "A" [ s "i"; s "j" ];
               Build.in_elem "q" "Q" [ s "i"; k ];
               Build.in_elem "rr" "R" [ k; s "j" ] ]
           ~outs:[ Build.out_elem "ao" "A" [ s "i"; s "j" ] ]
           ~code:(`Src "ao = a - q * rr")));
  Build.finalize g

(* trisolv: forward substitution *)
let trisolv () =
  let g = Sdfg.create ~symbols:[ "N" ] "trisolv" in
  let n = s "N" in
  mat g "L" n n;
  vec g "b" n;
  vec g "x" n;
  let main = Sdfg.add_state g ~label:"main" () in
  smap g main ~name:"solve_row" ~params:[ "i" ] ~ranges:[ r0 n ]
    ~ins:
      [ Build.in_elem "bb" "b" [ s "i" ];
        Build.in_ "lrow" "L" [ S.index (s "i"); S.full n ];
        Build.in_ ~dynamic:true "xin" "x" [ S.full n ] ]
    ~outs:[ Build.out_elem "xx" "x" [ s "i" ] ]
    ~code:
      (`Src "acc = bb\nfor j in 0:i { acc = acc - lrow[j] * xin[j] }\nxx = acc / lrow[i]");
  Build.finalize g

(* ---------- medley ------------------------------------------------------------ *)

(* floyd-warshall: k state loop with a parallel (i,j) relaxation *)
let floyd_warshall () =
  let g = Sdfg.create ~symbols:[ "N" ] "floyd_warshall" in
  let n = s "N" in
  mat g "path" n n;
  ignore
    (loop_state g ~sym:"k" ~lo:E.zero ~hi:n ~label:"kloop" (fun body ->
         let k = s "k" in
         pmap g body ~name:"relax" ~params:[ "i"; "j" ]
           ~ranges:[ r0 n; r0 n ]
           ~ins:
             [ Build.in_elem "pij" "path" [ s "i"; s "j" ];
               Build.in_elem "pik" "path" [ s "i"; k ];
               Build.in_elem "pkj" "path" [ k; s "j" ] ]
           ~outs:[ Build.out_elem "po" "path" [ s "i"; s "j" ] ]
           ~code:(`Src "po = min(pij, pik + pkj)")));
  Build.finalize g

(* deriche: horizontal + vertical recursive filter passes *)
let deriche () =
  let g = Sdfg.create ~symbols:[ "W"; "H" ] "deriche" in
  let w = s "W" and h = s "H" in
  mat g "imgIn" w h;
  mat g "imgOut" w h;
  tmat g "y1" w h;
  tmat g "y2" w h;
  let horiz = Sdfg.add_state g ~label:"horizontal" () in
  pmap g horiz ~name:"h_scan_fwd" ~params:[ "i" ] ~ranges:[ r0 w ]
    ~ins:[ Build.in_ "row" "imgIn" [ S.index (s "i"); S.full h ] ]
    ~outs:[ Build.out_ "yrow" "y1" [ S.index (s "i"); S.full h ] ]
    ~code:
      (`Src
        "ym1 = 0.0\nym2 = 0.0\nxm1 = 0.0\n\
         for j in 0:H { t = 0.5 * row[j] + 0.25 * xm1 + 0.5 * ym1 - 0.25 * ym2\n\
         yrow[j] = t\nym2 = ym1\nym1 = t\nxm1 = row[j] }");
  pmap g horiz ~name:"h_scan_bwd" ~params:[ "i" ] ~ranges:[ r0 w ]
    ~ins:[ Build.in_ "row" "imgIn" [ S.index (s "i"); S.full h ] ]
    ~outs:[ Build.out_ "yrow" "y2" [ S.index (s "i"); S.full h ] ]
    ~code:
      (`Src
        "yp1 = 0.0\nyp2 = 0.0\nxp1 = 0.0\nxp2 = 0.0\n\
         for jr in 0:H { j = H - 1 - jr\n\
         t = 0.25 * xp1 + 0.12 * xp2 + 0.5 * yp1 - 0.25 * yp2\n\
         yrow[j] = t\nyp2 = yp1\nyp1 = t\nxp2 = xp1\nxp1 = row[j] }");
  let combine = Sdfg.add_state g ~label:"combine" () in
  chain g horiz combine;
  pmap g combine ~name:"sum_passes" ~params:[ "i"; "j" ]
    ~ranges:[ r0 w; r0 h ]
    ~ins:
      [ Build.in_elem "a" "y1" [ s "i"; s "j" ];
        Build.in_elem "b" "y2" [ s "i"; s "j" ] ]
    ~outs:[ Build.out_elem "o" "imgOut" [ s "i"; s "j" ] ]
    ~code:(`Src "o = a + b");
  (* vertical passes over imgOut (same structure, transposed) *)
  let vert = Sdfg.add_state g ~label:"vertical" () in
  chain g combine vert;
  pmap g vert ~name:"v_scan" ~params:[ "j" ] ~ranges:[ r0 h ]
    ~ins:[ Build.in_ "col" "imgOut" [ S.full w; S.index (s "j") ] ]
    ~outs:[ Build.out_ "ocol" "imgOut" [ S.full w; S.index (s "j") ] ]
    ~code:
      (`Src
        "ym1 = 0.0\nym2 = 0.0\n\
         for i in 0:W { t = 0.5 * col[i] + 0.5 * ym1 - 0.25 * ym2\n\
         ocol[i] = t\nym2 = ym1\nym1 = t }");
  Build.finalize g

(* nussinov: RNA folding DP over anti-diagonals (sequential outer loop) *)
let nussinov () =
  let g = Sdfg.create ~symbols:[ "N" ] "nussinov" in
  let n = s "N" in
  vec g "seq" n;
  mat g "table" n n;
  ignore
    (loop_state g ~sym:"d" ~lo:E.one ~hi:n ~label:"diag" (fun body ->
         (* cells on anti-diagonal d are independent *)
         pmap g body ~name:"dp_cell" ~params:[ "i" ]
           ~ranges:[ rng E.zero (E.sub (E.sub n E.one) (s "d")) ]
           ~ins:
             [ Build.in_ ~dynamic:true "tb" "table" [ S.full n; S.full n ];
               Build.in_elem "si" "seq" [ s "i" ];
               Build.in_elem "sj" "seq" [ E.add (s "i") (s "d") ] ]
           ~outs:
             [ Build.out_elem "to" "table" [ s "i"; E.add (s "i") (s "d") ] ]
           ~code:
             (`Src
               "j = i + d\n\
                best = tb[i, j - 1]\n\
                t2 = tb[i + 1, j]\n\
                best = max(best, t2)\n\
                pair = 1.0 if si + sj == 3.0 else 0.0\n\
                t3 = (tb[i + 1, j - 1] + pair) if d >= 2 else pair\n\
                best = max(best, t3)\n\
                for k in 0:d { sp = tb[i, i + k] + tb[i + k + 1, j]\n\
                best = max(best, sp) }\n\
                to = best")));
  Build.finalize g

(* ---------- stencils ------------------------------------------------------------ *)

let jacobi_1d () =
  let g = Sdfg.create ~symbols:[ "N"; "T" ] "jacobi_1d" in
  let n = s "N" in
  vec g "A" n;
  vec g "B" n;
  ignore
    (loop_state g ~sym:"t" ~lo:E.zero ~hi:(s "T") ~label:"tloop" (fun body ->
         pmap g body ~name:"stencil_ab" ~params:[ "i" ]
           ~ranges:[ rng E.one (E.sub n (E.int 2)) ]
           ~ins:
             [ Build.in_ "a" "A" [ rng (E.sub (s "i") E.one) (E.add (s "i") E.one) ] ]
           ~outs:[ Build.out_elem "b" "B" [ s "i" ] ]
           ~code:(`Src "b = 0.33333 * (a[0] + a[1] + a[2])");
         pmap g body ~name:"stencil_ba" ~params:[ "i" ]
           ~ranges:[ rng E.one (E.sub n (E.int 2)) ]
           ~ins:
             [ Build.in_ "b" "B" [ rng (E.sub (s "i") E.one) (E.add (s "i") E.one) ] ]
           ~outs:[ Build.out_elem "a" "A" [ s "i" ] ]
           ~code:(`Src "a = 0.33333 * (b[0] + b[1] + b[2])")));
  Build.finalize g

let jacobi_2d () =
  let g = Sdfg.create ~symbols:[ "N"; "T" ] "jacobi_2d" in
  let n = s "N" in
  mat g "A" n n;
  mat g "B" n n;
  let five ~src ~dst body name =
    pmap g body ~name ~params:[ "i"; "j" ]
      ~ranges:
        [ rng E.one (E.sub n (E.int 2)); rng E.one (E.sub n (E.int 2)) ]
      ~ins:
        [ Build.in_elem "c" src [ s "i"; s "j" ];
          Build.in_elem "no" src [ E.sub (s "i") E.one; s "j" ];
          Build.in_elem "so" src [ E.add (s "i") E.one; s "j" ];
          Build.in_elem "we" src [ s "i"; E.sub (s "j") E.one ];
          Build.in_elem "ea" src [ s "i"; E.add (s "j") E.one ] ]
      ~outs:[ Build.out_elem "o" dst [ s "i"; s "j" ] ]
      ~code:(`Src "o = 0.2 * (c + no + so + we + ea)")
  in
  ignore
    (loop_state g ~sym:"t" ~lo:E.zero ~hi:(s "T") ~label:"tloop" (fun body ->
         five ~src:"A" ~dst:"B" body "jacobi_ab";
         five ~src:"B" ~dst:"A" body "jacobi_ba"));
  Build.finalize g

let heat_3d () =
  let g = Sdfg.create ~symbols:[ "N"; "T" ] "heat_3d" in
  let n = s "N" in
  cube g "A" n n n;
  cube g "B" n n n;
  let sweep ~src ~dst body name =
    pmap g body ~name ~params:[ "i"; "j"; "k" ]
      ~ranges:
        [ rng E.one (E.sub n (E.int 2));
          rng E.one (E.sub n (E.int 2));
          rng E.one (E.sub n (E.int 2)) ]
      ~ins:
        [ Build.in_elem "c" src [ s "i"; s "j"; s "k" ];
          Build.in_elem "xm" src [ E.sub (s "i") E.one; s "j"; s "k" ];
          Build.in_elem "xp" src [ E.add (s "i") E.one; s "j"; s "k" ];
          Build.in_elem "ym" src [ s "i"; E.sub (s "j") E.one; s "k" ];
          Build.in_elem "yp" src [ s "i"; E.add (s "j") E.one; s "k" ];
          Build.in_elem "zm" src [ s "i"; s "j"; E.sub (s "k") E.one ];
          Build.in_elem "zp" src [ s "i"; s "j"; E.add (s "k") E.one ] ]
      ~outs:[ Build.out_elem "o" dst [ s "i"; s "j"; s "k" ] ]
      ~code:
        (`Src
          "o = 0.125 * (xp - 2.0 * c + xm) + 0.125 * (yp - 2.0 * c + ym) + \
           0.125 * (zp - 2.0 * c + zm) + c")
  in
  ignore
    (loop_state g ~sym:"t" ~lo:E.zero ~hi:(s "T") ~label:"tloop" (fun body ->
         sweep ~src:"A" ~dst:"B" body "heat_ab";
         sweep ~src:"B" ~dst:"A" body "heat_ba"));
  Build.finalize g

(* seidel-2d: in-place dependences make the sweep sequential *)
let seidel_2d () =
  let g = Sdfg.create ~symbols:[ "N"; "T" ] "seidel_2d" in
  let n = s "N" in
  mat g "A" n n;
  ignore
    (loop_state g ~sym:"t" ~lo:E.zero ~hi:(s "T") ~label:"tloop" (fun body ->
         smap g body ~name:"seidel_sweep" ~params:[ "i"; "j" ]
           ~ranges:
             [ rng E.one (E.sub n (E.int 2)); rng E.one (E.sub n (E.int 2)) ]
           ~ins:
             [ Build.in_ "w" "A"
                 [ rng (E.sub (s "i") E.one) (E.add (s "i") E.one);
                   rng (E.sub (s "j") E.one) (E.add (s "j") E.one) ] ]
           ~outs:[ Build.out_elem "o" "A" [ s "i"; s "j" ] ]
           ~code:
             (`Src
               "o = (w[0, 0] + w[0, 1] + w[0, 2] + w[1, 0] + w[1, 1] + \
                w[1, 2] + w[2, 0] + w[2, 1] + w[2, 2]) / 9.0")));
  Build.finalize g

(* fdtd-2d: three dependent parallel sweeps per time step *)
let fdtd_2d () =
  let g = Sdfg.create ~symbols:[ "NX"; "NY"; "T" ] "fdtd_2d" in
  let nx = s "NX" and ny = s "NY" in
  mat g "ex" nx ny;
  mat g "ey" nx ny;
  mat g "hz" nx ny;
  vec g "fict" (s "T");
  ignore
    (loop_state g ~sym:"t" ~lo:E.zero ~hi:(s "T") ~label:"tloop" (fun body ->
         pmap g body ~name:"ey_boundary" ~params:[ "j" ] ~ranges:[ r0 ny ]
           ~ins:[ Build.in_elem "f" "fict" [ s "t" ] ]
           ~outs:[ Build.out_elem "e" "ey" [ E.zero; s "j" ] ]
           ~code:(`Src "e = f");
         pmap g body ~name:"ey_update" ~params:[ "i"; "j" ]
           ~ranges:[ r1 nx; r0 ny ]
           ~ins:
             [ Build.in_elem "e" "ey" [ s "i"; s "j" ];
               Build.in_elem "h1" "hz" [ s "i"; s "j" ];
               Build.in_elem "h2" "hz" [ E.sub (s "i") E.one; s "j" ] ]
           ~outs:[ Build.out_elem "eo" "ey" [ s "i"; s "j" ] ]
           ~code:(`Src "eo = e - 0.5 * (h1 - h2)");
         pmap g body ~name:"ex_update" ~params:[ "i"; "j" ]
           ~ranges:[ r0 nx; r1 ny ]
           ~ins:
             [ Build.in_elem "e" "ex" [ s "i"; s "j" ];
               Build.in_elem "h1" "hz" [ s "i"; s "j" ];
               Build.in_elem "h2" "hz" [ s "i"; E.sub (s "j") E.one ] ]
           ~outs:[ Build.out_elem "eo" "ex" [ s "i"; s "j" ] ]
           ~code:(`Src "eo = e - 0.5 * (h1 - h2)");
         pmap g body ~name:"hz_update" ~params:[ "i"; "j" ]
           ~ranges:
             [ rng E.zero (E.sub nx (E.int 2));
               rng E.zero (E.sub ny (E.int 2)) ]
           ~ins:
             [ Build.in_elem "h" "hz" [ s "i"; s "j" ];
               Build.in_elem "x1" "ex" [ s "i"; E.add (s "j") E.one ];
               Build.in_elem "x2" "ex" [ s "i"; s "j" ];
               Build.in_elem "y1" "ey" [ E.add (s "i") E.one; s "j" ];
               Build.in_elem "y2" "ey" [ s "i"; s "j" ] ]
           ~outs:[ Build.out_elem "ho" "hz" [ s "i"; s "j" ] ]
           ~code:(`Src "ho = h - 0.7 * (x1 - x2 + y1 - y2)")));
  Build.finalize g

(* adi: alternating-direction implicit — column sweeps then row sweeps *)
let adi () =
  let g = Sdfg.create ~symbols:[ "N"; "T" ] "adi" in
  let n = s "N" in
  mat g "u" n n;
  tmat g "v" n n;
  tmat g "p" n n;
  tmat g "q" n n;
  ignore
    (loop_state g ~sym:"t" ~lo:E.zero ~hi:(s "T") ~label:"tloop" (fun body ->
         pmap g body ~name:"col_sweep" ~params:[ "i" ] ~ranges:[ r1 n ]
           ~ins:
             [ Build.in_ "ucol" "u" [ S.full n; S.index (s "i") ];
               Build.in_ ~dynamic:true "pin" "p" [ S.full n; S.full n ];
               Build.in_ ~dynamic:true "qin" "q" [ S.full n; S.full n ] ]
           ~outs:
             [ Build.out_ "vcol" "v" [ S.full n; S.index (s "i") ];
               Build.out_ ~dynamic:true "po" "p" [ S.full n; S.full n ];
               Build.out_ ~dynamic:true "qo" "q" [ S.full n; S.full n ] ]
           ~code:
             (`Src
               "po[0, i] = 0.0\nqo[0, i] = 1.0\n\
                for j in 1:N { denom = -0.5 * po[j - 1, i] + 2.0\n\
                po[j, i] = 0.5 / denom\n\
                qo[j, i] = (ucol[j] + 0.5 * qo[j - 1, i]) / denom }\n\
                vcol[N - 1] = 1.0\n\
                for jr in 1:N { j = N - 1 - jr\n\
                vcol[j] = po[j, i] * vcol[j + 1] + qo[j, i] }");
         pmap g body ~name:"row_sweep" ~params:[ "i" ] ~ranges:[ r1 n ]
           ~ins:
             [ Build.in_ "vrow" "v" [ S.index (s "i"); S.full n ];
               Build.in_ ~dynamic:true "pin" "p" [ S.full n; S.full n ];
               Build.in_ ~dynamic:true "qin" "q" [ S.full n; S.full n ] ]
           ~outs:
             [ Build.out_ "urow" "u" [ S.index (s "i"); S.full n ];
               Build.out_ ~dynamic:true "po" "p" [ S.full n; S.full n ];
               Build.out_ ~dynamic:true "qo" "q" [ S.full n; S.full n ] ]
           ~code:
             (`Src
               "po[i, 0] = 0.0\nqo[i, 0] = 1.0\n\
                for j in 1:N { denom = -0.5 * po[i, j - 1] + 2.0\n\
                po[i, j] = 0.5 / denom\n\
                qo[i, j] = (vrow[j] + 0.5 * qo[i, j - 1]) / denom }\n\
                urow[N - 1] = 1.0\n\
                for jr in 1:N { j = N - 1 - jr\n\
                urow[j] = po[i, j] * urow[j + 1] + qo[i, j] }")));
  Build.finalize g

(* ---------- registry -------------------------------------------------------------- *)

let all : kernel list =
  [ kernel "2mm" k2mm
      ~large:[ ("NI", 800); ("NJ", 900); ("NK", 1100); ("NL", 1200) ]
      ~mini:[ ("NI", 4); ("NJ", 5); ("NK", 6); ("NL", 7) ];
    kernel "3mm" k3mm
      ~large:
        [ ("NI", 800); ("NJ", 900); ("NK", 1000); ("NL", 1100); ("NM", 1200) ]
      ~mini:[ ("NI", 4); ("NJ", 5); ("NK", 6); ("NL", 4); ("NM", 5) ];
    kernel "adi" adi
      ~large:[ ("N", 1000); ("T", 100) ]
      ~mini:[ ("N", 6); ("T", 2) ]
      ~hints:(fun sizes ->
        let n = float_of_int (List.assoc "N" sizes) in
        [ ("col_sweep", n); ("row_sweep", n) ]);
    kernel "atax" atax
      ~large:[ ("M", 1800); ("N", 2200) ]
      ~mini:[ ("M", 5); ("N", 6) ];
    kernel "bicg" bicg
      ~large:[ ("M", 1800); ("N", 2200) ]
      ~mini:[ ("M", 5); ("N", 6) ];
    kernel "cholesky" cholesky ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ];
    kernel "correlation" correlation
      ~large:[ ("M", 1200); ("N", 1400) ]
      ~mini:[ ("M", 5); ("N", 6) ];
    kernel "covariance" covariance
      ~large:[ ("M", 1200); ("N", 1400) ]
      ~mini:[ ("M", 5); ("N", 6) ];
    kernel "deriche" deriche
      ~large:[ ("W", 4096); ("H", 2160) ]
      ~mini:[ ("W", 6); ("H", 5) ]
      ~hints:(fun sizes ->
        let w = float_of_int (List.assoc "W" sizes) in
        let h = float_of_int (List.assoc "H" sizes) in
        [ ("h_scan_fwd", h); ("h_scan_bwd", h); ("v_scan", w) ]);
    kernel "doitgen" doitgen
      ~large:[ ("NR", 150); ("NQ", 140); ("NP", 160) ]
      ~mini:[ ("NR", 3); ("NQ", 4); ("NP", 5) ];
    kernel "durbin" durbin ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ]
      ~hints:(fun sizes ->
        let n = float_of_int (List.assoc "N" sizes) in
        [ ("durbin_step", n /. 2.) ]);
    kernel "fdtd-2d" fdtd_2d
      ~large:[ ("NX", 1000); ("NY", 1200); ("T", 500) ]
      ~mini:[ ("NX", 5); ("NY", 6); ("T", 2) ];
    kernel "floyd-warshall" floyd_warshall ~large:[ ("N", 2800) ]
      ~mini:[ ("N", 6) ];
    kernel "gemm" gemm
      ~large:[ ("NI", 1000); ("NJ", 1100); ("NK", 1200) ]
      ~mini:[ ("NI", 4); ("NJ", 5); ("NK", 6) ];
    kernel "gemver" gemver ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ];
    kernel "gesummv" gesummv ~large:[ ("N", 1300) ] ~mini:[ ("N", 6) ];
    kernel "gramschmidt" gramschmidt
      ~large:[ ("M", 1200); ("N", 1000) ]
      ~mini:[ ("M", 6); ("N", 5) ]
      ~hints:(fun sizes ->
        let m = float_of_int (List.assoc "M" sizes) in
        [ ("r_row", m) ]);
    kernel "heat-3d" heat_3d
      ~large:[ ("N", 120); ("T", 500) ]
      ~mini:[ ("N", 5); ("T", 2) ];
    kernel "jacobi-1d" jacobi_1d
      ~large:[ ("N", 2000); ("T", 500) ]
      ~mini:[ ("N", 8); ("T", 3) ];
    kernel "jacobi-2d" jacobi_2d
      ~large:[ ("N", 1300); ("T", 500) ]
      ~mini:[ ("N", 6); ("T", 2) ];
    kernel "lu" lu ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ];
    kernel "ludcmp" ludcmp ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ]
      ~hints:(fun sizes ->
        let n = float_of_int (List.assoc "N" sizes) in
        [ ("fwd_solve", n /. 2.); ("bwd_solve", n /. 2.) ]);
    kernel "mvt" mvt ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ];
    kernel "nussinov" nussinov ~large:[ ("N", 2500) ] ~mini:[ ("N", 6) ]
      ~hints:(fun sizes ->
        let n = float_of_int (List.assoc "N" sizes) in
        [ ("dp_cell", n /. 2.) ]);
    kernel "seidel-2d" seidel_2d
      ~large:[ ("N", 2000); ("T", 500) ]
      ~mini:[ ("N", 6); ("T", 2) ];
    kernel "symm" symm
      ~large:[ ("M", 1000); ("N", 1200) ]
      ~mini:[ ("M", 5); ("N", 6) ];
    kernel "syr2k" syr2k
      ~large:[ ("N", 1200); ("M", 1000) ]
      ~mini:[ ("N", 5); ("M", 6) ];
    kernel "syrk" syrk
      ~large:[ ("N", 1200); ("M", 1000) ]
      ~mini:[ ("N", 5); ("M", 6) ];
    kernel "trisolv" trisolv ~large:[ ("N", 2000) ] ~mini:[ ("N", 6) ]
      ~hints:(fun sizes ->
        let n = float_of_int (List.assoc "N" sizes) in
        [ ("solve_row", n /. 2.) ]);
    kernel "trmm" trmm
      ~large:[ ("M", 1000); ("N", 1200) ]
      ~mini:[ ("M", 5); ("N", 6) ] ]

let find name = List.find (fun k -> String.equal k.k_name name) all

let names = List.map (fun k -> k.k_name) all
