(* Graph workloads (§6.3): data-driven push-based BFS over SDFGs, and
   synthetic graph generators matched to Table 5's dataset statistics
   (road networks: average degree ~2.4 and high diameter; social
   networks/Kronecker: power-law degrees and low diameter). *)

module E = Symbolic.Expr
module S = Symbolic.Subset
module T = Tasklang.Types
open Sdfg_ir
open Builder
open Util

(* --- CSR graphs -------------------------------------------------------------- *)

type graph = {
  gr_name : string;
  gr_nodes : int;
  gr_edges : int;
  gr_row : int array;   (* V+1 *)
  gr_col : int array;   (* E *)
  gr_avg_degree : float;
  gr_max_degree : int;
}

let of_adjacency name adj =
  let v = Array.length adj in
  let e = Array.fold_left (fun acc l -> acc + List.length l) 0 adj in
  let row = Array.make (v + 1) 0 in
  let col = Array.make (max 1 e) 0 in
  let pos = ref 0 in
  let maxd = ref 0 in
  Array.iteri
    (fun i l ->
      row.(i) <- !pos;
      let l = List.sort_uniq compare l in
      maxd := max !maxd (List.length l);
      List.iter
        (fun j ->
          col.(!pos) <- j;
          incr pos)
        l)
    adj;
  row.(v) <- !pos;
  let col = Array.sub col 0 (max 1 !pos) in
  { gr_name = name; gr_nodes = v; gr_edges = !pos; gr_row = row;
    gr_col = col;
    gr_avg_degree = float_of_int !pos /. float_of_int (max 1 v);
    gr_max_degree = !maxd }

(* Road-network analogue: a W x H lattice with occasional diagonal
   shortcuts — degree ~2-4, very high diameter (like USA/OSM-Europe). *)
let road_grid ~width ~height ~seed =
  let st = Random.State.make [| seed |] in
  let v = width * height in
  let adj = Array.make v [] in
  let id x y = (y * width) + x in
  let link a b =
    adj.(a) <- b :: adj.(a);
    adj.(b) <- a :: adj.(b)
  in
  (* keep ~72% of lattice edges symmetrically: average degree ~2.9 with
     road-like high diameter, staying (mostly) connected *)
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width && Random.State.float st 1.0 < 0.72 then
        link (id x y) (id (x + 1) y);
      if y + 1 < height && Random.State.float st 1.0 < 0.72 then
        link (id x y) (id x (y + 1))
    done
  done;
  (* a spanning backbone keeps the grid connected *)
  for y = 0 to height - 1 do
    if y + 1 < height then link (id 0 y) (id 0 (y + 1))
  done;
  for x = 0 to width - 2 do
    link (id x 0) (id (x + 1) 0)
  done;
  of_adjacency (Fmt.str "road_%dx%d" width height) adj

(* RMAT/Kronecker-style generator: power-law degrees, low diameter (like
   twitter / soc-LiveJournal / kron21). *)
let rmat ~scale ~edge_factor ~seed =
  let st = Random.State.make [| seed |] in
  let v = 1 lsl scale in
  let e = v * edge_factor in
  let adj = Array.make v [] in
  let a, b, c = (0.57, 0.19, 0.19) in
  for _ = 1 to e do
    let src = ref 0 and dst = ref 0 in
    for bit = scale - 1 downto 0 do
      let r = Random.State.float st 1.0 in
      if r < a then ()
      else if r < a +. b then dst := !dst lor (1 lsl bit)
      else if r < a +. b +. c then src := !src lor (1 lsl bit)
      else begin
        src := !src lor (1 lsl bit);
        dst := !dst lor (1 lsl bit)
      end
    done;
    if !src <> !dst then adj.(!src) <- !dst :: adj.(!src)
  done;
  of_adjacency (Fmt.str "rmat_s%d" scale) adj

(* Table 5 datasets, scaled down proportionally for simulation; the bench
   harness reports the scaled sizes next to the paper's originals. *)
let datasets ~scale_shift =
  [ ("usa", `Road (1 lsl (9 - scale_shift), 1 lsl (9 - scale_shift)));
    ("osm-eur", `Road (1 lsl (10 - scale_shift), 1 lsl (9 - scale_shift)));
    ("soc-lj", `Rmat (14 - scale_shift, 14));
    ("twitter", `Rmat (15 - scale_shift, 38));
    ("kron21", `Rmat (13 - scale_shift, 86)) ]

let load ~scale_shift name =
  match List.assoc name (datasets ~scale_shift) with
  | `Road (w, h) -> road_grid ~width:w ~height:h ~seed:42
  | `Rmat (scale, ef) -> rmat ~scale ~edge_factor:ef ~seed:42

(* --- BFS as an SDFG (Fig. 16) -------------------------------------------------- *)

(* Data-driven push BFS: the primary state maps over the current frontier,
   pushing newly discovered vertices into a (local, then global) stream,
   and accumulating the next frontier size with a Sum WCR; the state
   machine loops while the frontier is non-empty ("fsz>0; d++"). *)
let bfs () =
  let g = Sdfg.create ~symbols:[ "V"; "Efull" ] "bfs" in
  let v = s "V" in
  Sdfg.add_array g "G_row" ~shape:[ E.add v E.one ] ~dtype:i64;
  Sdfg.add_array g "G_col" ~shape:[ s "Efull" ] ~dtype:i64;
  Sdfg.add_array g "depth" ~shape:[ v ] ~dtype:i64;
  Sdfg.add_array g "frontier" ~shape:[ v ] ~dtype:i64;
  Sdfg.add_scalar g "fsz" ~dtype:i64;
  Sdfg.add_scalar g ~transient:true "fsz_next" ~dtype:i64;
  Sdfg.add_stream g "gstream" ~dtype:i64;
  (* main level expansion *)
  let main = Sdfg.add_state g ~label:"level" () in
  pmap g main ~name:"update_and_push" ~params:[ "f" ]
    ~ranges:[ rng E.zero (E.sub (s "fsz") E.one) ]
    ~ins:
      [ Build.in_elem "src" "frontier" [ s "f" ];
        Build.in_ ~dynamic:true "grow" "G_row" [ S.full (E.add v E.one) ];
        Build.in_ ~dynamic:true "gcol" "G_col" [ S.full (s "Efull") ];
        Build.in_ ~dynamic:true "dep" "depth" [ S.full v ] ]
    ~outs:
      [ Build.out_ ~dynamic:true "depw" "depth" [ S.full v ];
        Build.out_ ~dynamic:true "next" "gstream" [ S.index E.zero ];
        Build.out_elem ~wcr:Wcr.sum ~dynamic:true "nsz" "fsz_next" [ E.zero ] ]
    ~code:
      (`Src
        "nd = dep[src] + 1\n\
         for e in grow[src]:grow[src + 1] { nid = gcol[e]\n\
         if dep[nid] < 0 { depw[nid] = nd\nnext = nid\nnsz = 1 } }");
  (* drain the stream into the frontier array and swap sizes *)
  let advance = Sdfg.add_state g ~label:"advance" () in
  let s_acc = Build.access advance "gstream" in
  let f_acc = Build.access advance "frontier" in
  Build.edge advance
    ~memlet:(Memlet.dyn "gstream" [ S.index E.zero ])
    ~src:s_acc ~dst:f_acc ();
  ignore
    (Build.simple_tasklet g advance ~name:"swap_sizes"
       ~ins:[ Build.in_elem "nsz" "fsz_next" [ E.zero ] ]
       ~outs:
         [ Build.out_elem "fo" "fsz" [ E.zero ];
           Build.out_elem "nz" "fsz_next" [ E.zero ] ]
       ~code:(`Src "fo = nsz\nnz = 0") ());
  ignore (Sdfg.add_transition g ~src:(State.id main) ~dst:(State.id advance) ());
  ignore
    (Sdfg.add_transition g ~src:(State.id advance) ~dst:(State.id main)
       ~cond:(Bexp.gt (s "fsz") E.zero)
       ());
  Propagate.propagate g;
  Validate.check g;
  g

(* Reference BFS for validation, and host-side preparation. *)
let reference_bfs (gr : graph) ~source =
  let depth = Array.make gr.gr_nodes (-1) in
  depth.(source) <- 0;
  let q = Queue.create () in
  Queue.push source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for e = gr.gr_row.(u) to gr.gr_row.(u + 1) - 1 do
      let w = gr.gr_col.(e) in
      if depth.(w) < 0 then begin
        depth.(w) <- depth.(u) + 1;
        Queue.push w q
      end
    done
  done;
  depth

(* Run the BFS SDFG on a concrete graph through the interpreter. *)
let run_bfs (gr : graph) ~source =
  let g = bfs () in
  let vi = gr.gr_nodes in
  let row =
    Interp.Tensor.of_int_array T.I64 [| vi + 1 |] gr.gr_row
  in
  let col =
    Interp.Tensor.of_int_array T.I64
      [| max 1 gr.gr_edges |]
      (if gr.gr_edges = 0 then [| 0 |] else gr.gr_col)
  in
  let depth =
    Interp.Tensor.init T.I64 [| vi |] (fun idx ->
        T.I (if List.hd idx = source then 0 else -1))
  in
  let frontier =
    Interp.Tensor.init T.I64 [| vi |] (fun idx ->
        T.I (if List.hd idx = 0 then source else 0))
  in
  let fsz = Interp.Tensor.init T.I64 [||] (fun _ -> T.I 1) in
  ignore
    (Interp.Exec.run g
       ~symbols:[ ("V", vi); ("Efull", max 1 gr.gr_edges) ]
       ~args:
         [ ("G_row", row); ("G_col", col); ("depth", depth);
           ("frontier", frontier); ("fsz", fsz) ]);
  depth

(* Number of BFS levels — the state-visit hint for the cost model. *)
let bfs_levels (gr : graph) ~source =
  let depth = reference_bfs gr ~source in
  Array.fold_left max 0 depth + 1
