(* Shared helpers for workload construction. *)

module E = Symbolic.Expr
module S = Symbolic.Subset
module T = Tasklang.Types
open Sdfg_ir
open Builder

let f64 = T.F64
let i64 = T.I64

let r0 n = S.range E.zero (E.sub n E.one)       (* [0 : n-1] *)
let r1 n = S.range E.one (E.sub n E.one)        (* [1 : n-1] *)
let rng a b = S.range a b                        (* inclusive *)

let s = E.sym
let i = E.int

(* A state executing [body] inside a symbol-driven loop
   [for sym = lo .. hi-1] in the state machine (the canonical
   MapToForLoop'd structure used for loop-carried dependencies). *)
let loop_state g ~sym ~lo ~hi ?(label = sym ^ "_loop") build_body =
  (* [pre] is created first so it becomes the start state when the loop
     opens the SDFG *)
  let pre = Sdfg.add_state g ~label:(label ^ "_init") () in
  let body = Sdfg.add_state g ~label () in
  build_body body;
  ignore
    (Sdfg.add_transition g ~src:(State.id pre) ~dst:(State.id body)
       ~assign:[ (sym, lo) ] ());
  ignore
    (Sdfg.add_transition g ~src:(State.id body) ~dst:(State.id body)
       ~cond:(Bexp.lt (E.add (s sym) E.one) hi)
       ~assign:[ (sym, E.add (s sym) E.one) ]
       ());
  (pre, body)

(* Chain two states with an unconditional transition. *)
let chain g a b =
  ignore (Sdfg.add_transition g ~src:(State.id a) ~dst:(State.id b) ())

(* Chain from a loop (its body state's natural exit) to the next state:
   transition taken when the loop condition fails. *)
let chain_after_loop g ~body ~sym ~hi next =
  ignore
    (Sdfg.add_transition g ~src:(State.id body) ~dst:(State.id next)
       ~cond:(Bexp.ge (E.add (s sym) E.one) hi)
       ())

(* Mapped tasklet with the CPU-parallel schedule — the default produced by
   the Python frontend for `dace.map` (§3.3). *)
let pmap g st ~name ~params ~ranges ~ins ~outs ~code =
  ignore
    (Build.mapped_tasklet g st ~name ~params ~ranges
       ~schedule:Defs.Cpu_multicore ~ins ~outs ~code ())

(* Sequential mapped tasklet (loop-carried or small trip counts). *)
let smap g st ~name ~params ~ranges ~ins ~outs ~code =
  ignore
    (Build.mapped_tasklet g st ~name ~params ~ranges
       ~schedule:Defs.Sequential ~ins ~outs ~code ())

(* Declarations *)
let mat g name a b = Sdfg.add_array g name ~shape:[ a; b ] ~dtype:f64
let vec g name a = Sdfg.add_array g name ~shape:[ a ] ~dtype:f64
let cube g name a b c = Sdfg.add_array g name ~shape:[ a; b; c ] ~dtype:f64
let tmat g name a b =
  Sdfg.add_array g name ~transient:true ~shape:[ a; b ] ~dtype:f64
let tvec g name a =
  Sdfg.add_array g name ~transient:true ~shape:[ a ] ~dtype:f64

(* Random tensors for interpreter runs. *)
let rand_f shape seed =
  let st = Random.State.make [| seed |] in
  Interp.Tensor.init f64 shape (fun _ -> T.F (Random.State.float st 2.0 -. 1.0))

let zeros shape = Interp.Tensor.create f64 shape
