(* Scattering Self-Energy (SSE) computation from the OMEN quantum
   transport simulator (§6.4, Fig. 18):

     Σ≷[k_z, E, a] ∝ Σ_{q_z, ω, i, b}  ∇H·G[i, k_z − q_z, E − ω, a, b]
                                      · ∇H·D[i, q_z, ω, a, b]

   The paper's input is a 4,864-atom nanostructure; we build a synthetic
   tensor contraction with the same loop nest and small-matrix structure
   (substitution documented in DESIGN.md).  Two variants:

   - [naive]: one small matrix multiplication per (k_z, E, q_z, ω, i)
     point, each its own map iteration — the many-small-GEMMs
     under-utilization that OMEN suffers from (1.3% of peak);
   - [batched]: the transformed dataflow of Fig. 18 steps ❶–❹ — a single
     map over all dimensions with the orbital contraction inside
     (small-scale batched-strided matrix multiplication, SBSMM). *)

module E = Symbolic.Expr
module S = Symbolic.Subset
open Sdfg_ir
open Builder
open Util

(* Symbols: NKZ momentum points, NE energies, NQZ/NW transfer grid,
   NI atoms (i), NB orbitals per atom. *)
let symbols = [ "NKZ"; "NE"; "NQZ"; "NW"; "NI"; "NB" ]

let declare g =
  let nkz = s "NKZ" and ne = s "NE" and nqz = s "NQZ" and nw = s "NW" in
  let ni = s "NI" and nb = s "NB" in
  (* flattened physical tensors *)
  Sdfg.add_array g "HG" ~shape:[ ni; nkz; ne; nb; nb ] ~dtype:f64;
  Sdfg.add_array g "HD" ~shape:[ ni; nqz; nw; nb; nb ] ~dtype:f64;
  Sdfg.add_array g "Sigma" ~shape:[ nkz; ne; nb ] ~dtype:f64;
  (nkz, ne, nqz, nw, ni, nb)

(* Batched/transformed variant: single parallel map, orbital contraction
   in the tasklet (the SBSMM kernel of Table 3). *)
let batched () =
  let g = Sdfg.create ~symbols "sse_batched" in
  let nkz, ne, nqz, nw, ni, nb = declare g in
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_sigma" ~params:[ "kz"; "e"; "a" ]
    ~ranges:[ r0 nkz; r0 ne; r0 nb ]
    ~ins:[]
    ~outs:[ Build.out_elem "o" "Sigma" [ s "kz"; s "e"; s "a" ] ]
    ~code:(`Src "o = 0.0");
  let main = Sdfg.add_state g ~label:"contract" () in
  chain g init main;
  pmap g main ~name:"sbsmm" ~params:[ "kz"; "e"; "qz"; "w"; "ii" ]
    ~ranges:[ r0 nkz; r0 ne; r0 nqz; r0 nw; r0 ni ]
    ~ins:
      [ Build.in_ "gm" "HG"
          [ S.index (s "ii");
            S.index (E.modulo (E.add (E.sub (s "kz") (s "qz")) nkz) nkz);
            S.index (E.modulo (E.add (E.sub (s "e") (s "w")) ne) ne);
            S.full nb; S.full nb ];
        Build.in_ "dm" "HD"
          [ S.index (s "ii"); S.index (s "qz"); S.index (s "w");
            S.full nb; S.full nb ] ]
    ~outs:
      [ Build.out_ ~wcr:Wcr.sum "sg" "Sigma"
          [ S.index (s "kz"); S.index (s "e"); S.full nb ] ]
    ~code:
      (`Src
        "for a in 0:NB { acc = 0.0\n\
         for b in 0:NB { acc = acc + gm[a, b] * dm[a, b] }\n\
         sg[a] = acc }");
  Build.finalize g

(* Naive variant: the contraction is fissioned so each (qz, w) pair is a
   separate state execution (a separate "library call"), reproducing
   OMEN's many-small-operations structure. *)
let naive () =
  let g = Sdfg.create ~symbols "sse_naive" in
  let nkz, ne, nqz, nw, ni, nb = declare g in
  let init = Sdfg.add_state g ~label:"init" () in
  pmap g init ~name:"zero_sigma" ~params:[ "kz"; "e"; "a" ]
    ~ranges:[ r0 nkz; r0 ne; r0 nb ]
    ~ins:[]
    ~outs:[ Build.out_elem "o" "Sigma" [ s "kz"; s "e"; s "a" ] ]
    ~code:(`Src "o = 0.0");
  (* state loop over (qz, w) with a small map inside: each visit models
     one batched call of only NKZ*NE*NI tiny multiplications *)
  let _, body =
    loop_state g ~sym:"qw" ~lo:E.zero ~hi:(E.mul nqz nw) ~label:"qw_loop"
      (fun body ->
        pmap g body ~name:"small_mm" ~params:[ "kz"; "e"; "ii" ]
          ~ranges:[ r0 nkz; r0 ne; r0 ni ]
          ~ins:
            [ Build.in_ "gm" "HG"
                [ S.index (s "ii");
                  S.index
                    (E.modulo
                       (E.add (E.sub (s "kz") (E.modulo (s "qw") nqz)) nkz)
                       nkz);
                  S.index
                    (E.modulo (E.add (E.sub (s "e") (E.div (s "qw") nqz)) ne)
                       ne);
                  S.full nb; S.full nb ];
              Build.in_ "dm" "HD"
                [ S.index (s "ii");
                  S.index (E.modulo (s "qw") nqz);
                  S.index (E.div (s "qw") nqz);
                  S.full nb; S.full nb ] ]
          ~outs:
            [ Build.out_ ~wcr:Wcr.sum "sg" "Sigma"
                [ S.index (s "kz"); S.index (s "e"); S.full nb ] ]
          ~code:
            (`Src
              "for a in 0:NB { acc = 0.0\n\
               for b in 0:NB { acc = acc + gm[a, b] * dm[a, b] }\n\
               sg[a] = acc }"))
  in
  ignore body;
  (* chain init into the loop's pre-state *)
  let pre =
    Sdfg.states g
    |> List.find (fun st -> State.label st = "qw_loop_init")
  in
  ignore (Sdfg.add_transition g ~src:(State.id init) ~dst:(State.id pre) ());
  Sdfg.set_start g (State.id init);
  Propagate.propagate g;
  Validate.check g;
  g

(* Mini sizes for interpreter validation; "paper" sizes approximate the
   4,864-atom nanostructure workload (Table 2 reports 63.6 Tflop total —
   sizes here are chosen to give the same order of total flops). *)
let mini = [ ("NKZ", 2); ("NE", 3); ("NQZ", 2); ("NW", 2); ("NI", 2); ("NB", 3) ]

let paper =
  (* chosen so the useful flop count matches Table 2's DaCe row
     (31.8 Tflop): 2 * NKZ*NE*NQZ*NW*NI * NB^2 multiply-adds *)
  [ ("NKZ", 24); ("NE", 600); ("NQZ", 24); ("NW", 10); ("NI", 32);
    ("NB", 12) ]

let hints = [ ("sbsmm", 1.0); ("small_mm", 1.0) ]
