lib/workloads/graphs.ml: Array Bexp Build Builder Fmt Interp List Memlet Propagate Queue Random Sdfg Sdfg_ir State Symbolic Tasklang Util Validate Wcr
