lib/workloads/sse.ml: Build Builder List Propagate Sdfg Sdfg_ir State Symbolic Util Validate Wcr
