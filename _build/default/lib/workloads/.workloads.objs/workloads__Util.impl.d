lib/workloads/util.ml: Bexp Build Builder Defs Interp Random Sdfg Sdfg_ir State Symbolic Tasklang
