lib/workloads/kernels.ml: Array Build Builder Defs Hashtbl List Memlet Option Polybench Random Sdfg Sdfg_ir State Symbolic Tasklang Util Wcr
