lib/workloads/polybench.ml: Build Builder List Sdfg Sdfg_ir String Symbolic Util Wcr
