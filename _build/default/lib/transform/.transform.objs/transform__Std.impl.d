lib/transform/std.ml: Cleanup_xforms Control_xforms Data_xforms Device_xforms Fusion_xforms List Map_xforms Sdfg_ir Xform
