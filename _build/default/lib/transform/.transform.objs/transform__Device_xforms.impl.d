lib/transform/device_xforms.ml: Bexp Defs Hashtbl Helpers List Memlet Sdfg Sdfg_ir State String Symbolic Xform
