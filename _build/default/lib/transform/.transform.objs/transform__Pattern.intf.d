lib/transform/pattern.mli: Sdfg_ir
