lib/transform/helpers.ml: Builder Defs Fmt List Sdfg Sdfg_ir State String Symbolic Tasklang Xform
