lib/transform/xform.mli: Format Sdfg_ir
