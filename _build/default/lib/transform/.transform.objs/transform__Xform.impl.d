lib/transform/xform.ml: Fmt Hashtbl List Propagate Sdfg Sdfg_ir String Validate
