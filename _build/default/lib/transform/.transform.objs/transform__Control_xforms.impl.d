lib/transform/control_xforms.ml: Bexp Defs Fmt Hashtbl Helpers Int List Map_xforms Option Sdfg Sdfg_ir State String Symbolic Xform
