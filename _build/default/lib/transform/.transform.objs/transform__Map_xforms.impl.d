lib/transform/map_xforms.ml: Defs Fmt Helpers List Sdfg Sdfg_ir State String Symbolic Xform
