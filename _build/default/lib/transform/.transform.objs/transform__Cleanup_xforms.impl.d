lib/transform/cleanup_xforms.ml: Defs Helpers List Memlet Sdfg Sdfg_ir State String Symbolic Xform
