lib/transform/data_xforms.ml: Defs Fmt Helpers List Memlet Option Pattern Sdfg Sdfg_ir State String Symbolic Xform
