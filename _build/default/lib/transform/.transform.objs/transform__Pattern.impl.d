lib/transform/pattern.ml: Defs Int List Sdfg Sdfg_ir State
