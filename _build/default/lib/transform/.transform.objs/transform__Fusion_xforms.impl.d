lib/transform/fusion_xforms.ml: Defs Fmt Fun Hashtbl Helpers List Memlet Option Sdfg Sdfg_ir State String Symbolic Wcr Xform
