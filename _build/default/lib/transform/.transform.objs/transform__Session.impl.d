lib/transform/session.ml: Fmt Fun List Option Sdfg Sdfg_ir Xform
