(* Map-scope transformations (paper Appendix B, Table 4):
   MapCollapse, MapExpansion, MapInterchange, MapTiling, Vectorization. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Helpers

(* Two directly nested map scopes: every out-edge of the outer entry leads
   to the inner entry and every in-edge of the outer exit comes from the
   inner exit. *)
let find_nested_maps (g : Sdfg.t) =
  Sdfg.states g
  |> List.concat_map (fun st ->
         State.map_entries st
         |> List.filter_map (fun (outer, _) ->
                let outs = State.out_edges st outer in
                match outs with
                | [] -> None
                | e0 :: _ ->
                  let inner = e0.e_dst in
                  if
                    State.is_scope_entry st inner
                    && (match State.node st inner with
                       | Map_entry _ -> true
                       | _ -> false)
                    && List.for_all (fun (e : edge) -> e.e_dst = inner) outs
                    && List.for_all
                         (fun (e : edge) -> e.e_src = outer)
                         (State.in_edges st inner)
                  then
                    Some
                      (Xform.candidate ~state:(State.id st)
                         ~note:
                           (Fmt.str "maps %d/%d in %s" outer inner
                              (State.label st))
                         [ ("outer", outer); ("inner", inner) ])
                  else None))

(* Inner ranges must not depend on outer parameters for reordering-style
   transformations. *)
let ranges_independent (outer : map_info) (inner : map_info) =
  List.for_all
    (fun (r : Subset.range) ->
      let syms =
        Expr.free_syms r.start @ Expr.free_syms r.stop
        @ Expr.free_syms r.stride
      in
      List.for_all (fun p -> not (List.mem p syms)) outer.mp_params)
    inner.mp_ranges

(* --- MapCollapse ---------------------------------------------------------- *)

let map_collapse =
  Xform.make ~name:"MapCollapse"
    ~description:
      "Collapses two nested maps into one; the new map has the union of \
       the dimensions of the original maps."
    ~find:(fun g ->
      find_nested_maps g
      |> List.filter (fun c ->
             let st = state_of g c in
             let o = map_info st (role c "outer") in
             let i = map_info st (role c "inner") in
             ranges_independent o i))
    ~apply:(fun g c ->
      let st = state_of g c in
      let outer = role c "outer" and inner = role c "inner" in
      let o = map_info st outer and i = map_info st inner in
      let inner_exit = State.exit_of st inner in
      let outer_exit = State.exit_of st outer in
      set_map_info st outer
        { o with
          mp_params = o.mp_params @ i.mp_params;
          mp_ranges = o.mp_ranges @ i.mp_ranges };
      (* Splice out the inner entry: outer OUT_x feeds the inner scope's
         consumers directly, with the innermost memlets. *)
      List.iter
        (fun (e_in : edge) ->
          match e_in.e_dst_conn with
          | Some cin when String.length cin > 3 && String.sub cin 0 3 = "IN_"
            ->
            let base = String.sub cin 3 (String.length cin - 3) in
            List.iter
              (fun (e_out : edge) ->
                if e_out.e_src_conn = Some ("OUT_" ^ base) then
                  ignore
                    (State.add_edge st ~src:outer
                       ?src_conn:(Some ("OUT_" ^ base))
                       ?dst_conn:e_out.e_dst_conn ?memlet:e_out.e_memlet
                       ~dst:e_out.e_dst ()))
              (State.out_edges st inner)
          | _ -> ())
        (State.in_edges st inner);
      (* Same for the inner exit feeding the outer exit. *)
      List.iter
        (fun (e_in : edge) ->
          match e_in.e_dst_conn with
          | Some cin when String.length cin > 3 && String.sub cin 0 3 = "IN_"
            ->
            let base = String.sub cin 3 (String.length cin - 3) in
            List.iter
              (fun (e_out : edge) ->
                if e_out.e_src_conn = Some ("OUT_" ^ base) then
                  ignore
                    (State.add_edge st ~src:e_in.e_src
                       ?src_conn:e_in.e_src_conn
                       ?dst_conn:(Some ("IN_" ^ base)) ?memlet:e_in.e_memlet
                       ~dst:outer_exit ()))
              (State.out_edges st inner_exit)
          | _ -> ())
        (State.in_edges st inner_exit);
      (* connector-less ordering edges (maps without inputs/outputs) *)
      List.iter
        (fun (e : edge) ->
          if e.e_src_conn = None && e.e_memlet = None then
            ignore (State.add_edge st ~src:outer ~dst:e.e_dst ()))
        (State.out_edges st inner);
      List.iter
        (fun (e : edge) ->
          if e.e_dst_conn = None && e.e_memlet = None then
            ignore (State.add_edge st ~src:e.e_src ~dst:outer_exit ()))
        (State.in_edges st inner_exit);
      State.remove_node st inner;
      State.remove_node st inner_exit)

(* --- MapExpansion ---------------------------------------------------------- *)

(* Split a multi-dimensional map into two nested maps: the first [split]
   parameters stay on the outer map, the rest move to a fresh inner map. *)
let map_expansion_at ~split =
  Xform.make ~name:"MapExpansion"
    ~description:
      "Expands a multi-dimensional map to two nested ones; dimensions are \
       split into two disjoint subsets."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.map_entries st
             |> List.filter_map (fun (nid, m) ->
                    if List.length m.mp_params >= 2 then
                      Some
                        (Xform.candidate ~state:(State.id st)
                           ~note:(State.node_label st nid)
                           [ ("map", nid) ])
                    else None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let entry = role c "map" in
      let exit_ = State.exit_of st entry in
      let m = map_info st entry in
      let k =
        let n = List.length m.mp_params in
        if split <= 0 || split >= n then 1 else split
      in
      let take l n = List.filteri (fun i _ -> i < n) l in
      let drop l n = List.filteri (fun i _ -> i >= n) l in
      let inner_info =
        { m with
          mp_params = drop m.mp_params k;
          mp_ranges = drop m.mp_ranges k;
          mp_schedule = Sequential }
      in
      set_map_info st entry
        { m with mp_params = take m.mp_params k; mp_ranges = take m.mp_ranges k };
      let inner = State.add_node st (Map_entry inner_info) in
      let inner_exit = State.add_node st Map_exit in
      State.set_scope st ~entry:inner ~exit_:inner_exit;
      (* Route every OUT_x of the outer entry through the inner entry. *)
      List.iter
        (fun (e : edge) ->
          match e.e_src_conn with
          | Some sc when String.length sc > 4 && String.sub sc 0 4 = "OUT_" ->
            let base = String.sub sc 4 (String.length sc - 4) in
            ignore
              (State.add_edge st ~src:entry ~src_conn:sc
                 ~dst_conn:("IN_" ^ base) ?memlet:e.e_memlet ~dst:inner ());
            ignore
              (reconnect st e ~src:inner ~src_conn:(Some sc)
                 ~dst:e.e_dst ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet)
          | _ ->
            (* connector-less ordering edge: reroute through inner scope *)
            ignore
              (reconnect st e ~src:inner ~src_conn:None ~dst:e.e_dst
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet);
            ignore (State.add_edge st ~src:entry ~dst:inner ()))
        (State.out_edges st entry);
      List.iter
        (fun (e : edge) ->
          match e.e_dst_conn with
          | Some dc when String.length dc > 3 && String.sub dc 0 3 = "IN_" ->
            let base = String.sub dc 3 (String.length dc - 3) in
            ignore
              (State.add_edge st ~src:inner_exit ~src_conn:("OUT_" ^ base)
                 ~dst_conn:dc ?memlet:e.e_memlet ~dst:exit_ ());
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn
                 ~dst:inner_exit ~dst_conn:(Some dc) ~memlet:e.e_memlet)
          | _ ->
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn
                 ~dst:inner_exit ~dst_conn:None ~memlet:e.e_memlet);
            ignore (State.add_edge st ~src:inner_exit ~dst:exit_ ()))
        (State.in_edges st exit_))

let map_expansion = map_expansion_at ~split:1

(* --- MapInterchange ---------------------------------------------------------- *)

let map_interchange =
  Xform.make ~name:"MapInterchange"
    ~description:"Interchanges the position of two nested maps."
    ~find:(fun g ->
      find_nested_maps g
      |> List.filter (fun c ->
             let st = state_of g c in
             let o = map_info st (role c "outer") in
             let i = map_info st (role c "inner") in
             ranges_independent o i
             && List.for_all
                  (fun (r : Subset.range) ->
                    let syms =
                      Expr.free_syms r.start @ Expr.free_syms r.stop
                    in
                    List.for_all
                      (fun p -> not (List.mem p syms))
                      i.mp_params)
                  o.mp_ranges))
    ~apply:(fun g c ->
      let st = state_of g c in
      let outer = role c "outer" and inner = role c "inner" in
      let o = map_info st outer and i = map_info st inner in
      (* Swap parameters and ranges; schedules stay with their position
         (the outer scope keeps the parallelizing schedule). *)
      set_map_info st outer
        { o with mp_params = i.mp_params; mp_ranges = i.mp_ranges };
      set_map_info st inner
        { i with mp_params = o.mp_params; mp_ranges = o.mp_ranges })

(* --- MapTiling ---------------------------------------------------------- *)

(* Orthogonal tiling: wrap the matched map in a new outer map iterating
   over tile origins; the original map becomes the intra-tile loop with a
   min-clipped range. *)
let map_tiling_sized ~tile_sizes =
  Xform.make ~name:"MapTiling"
    ~description:"Applies orthogonal tiling to a map."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.map_entries st
             |> List.map (fun (nid, _) ->
                    Xform.candidate ~state:(State.id st)
                      ~note:(State.node_label st nid)
                      [ ("map", nid) ])))
    ~apply:(fun g c ->
      let st = state_of g c in
      let entry = role c "map" in
      let exit_ = State.exit_of st entry in
      let m = map_info st entry in
      let tiles =
        (* cycle tile_sizes to the map's dimensionality *)
        List.mapi
          (fun i _ ->
            List.nth tile_sizes (i mod List.length tile_sizes))
          m.mp_params
      in
      (* fresh parameter names: repeated tiling must not shadow the outer
         tile parameters *)
      let used =
        State.nodes st
        |> List.concat_map (fun (_, n) ->
               match n with Map_entry mm -> mm.mp_params | _ -> [])
      in
      let tile_params =
        List.map
          (fun p ->
            let base = "tile_" ^ p in
            if not (List.mem base used) then base
            else
              let rec go i =
                let cand = Fmt.str "%s_%d" base i in
                if List.mem cand used then go (i + 1) else cand
              in
              go 1)
          m.mp_params
      in
      let tile_ranges =
        List.map2
          (fun (r : Subset.range) t ->
            { r with
              stride = Expr.mul r.stride (Expr.int t) })
          m.mp_ranges tiles
      in
      let inner_ranges =
        List.map2
          (fun ((r : Subset.range), tp) t ->
            let t0 = Expr.sym tp in
            { Subset.start = t0;
              stop =
                Expr.min_ r.stop
                  (Expr.add t0
                     (Expr.mul (Expr.int (t - 1)) r.stride));
              stride = r.stride;
              tile = r.tile })
          (List.combine m.mp_ranges tile_params)
          tiles
      in
      let outer_info =
        { m with mp_params = tile_params; mp_ranges = tile_ranges }
      in
      set_map_info st entry
        { m with mp_ranges = inner_ranges; mp_schedule = Sequential };
      let o_entry = State.add_node st (Map_entry outer_info) in
      let o_exit = State.add_node st Map_exit in
      State.set_scope st ~entry:o_entry ~exit_:o_exit;
      (* Outer edges of the original entry now pass through the new scope. *)
      List.iter
        (fun (e : edge) ->
          match e.e_dst_conn with
          | Some dc when String.length dc > 3 && String.sub dc 0 3 = "IN_" ->
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn ~dst:o_entry
                 ~dst_conn:(Some dc) ~memlet:e.e_memlet);
            let base = String.sub dc 3 (String.length dc - 3) in
            ignore
              (State.add_edge st ~src:o_entry ~src_conn:("OUT_" ^ base)
                 ~dst_conn:dc ?memlet:e.e_memlet ~dst:entry ())
          | _ ->
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn ~dst:o_entry
                 ~dst_conn:None ~memlet:e.e_memlet);
            ignore (State.add_edge st ~src:o_entry ~dst:entry ()))
        (State.in_edges st entry);
      List.iter
        (fun (e : edge) ->
          match e.e_src_conn with
          | Some sc when String.length sc > 4 && String.sub sc 0 4 = "OUT_" ->
            ignore
              (reconnect st e ~src:o_exit ~src_conn:(Some sc) ~dst:e.e_dst
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet);
            let base = String.sub sc 4 (String.length sc - 4) in
            ignore
              (State.add_edge st ~src:exit_ ~src_conn:sc
                 ~dst_conn:("IN_" ^ base) ?memlet:e.e_memlet ~dst:o_exit ())
          | _ ->
            ignore
              (reconnect st e ~src:o_exit ~src_conn:None ~dst:e.e_dst
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet);
            ignore (State.add_edge st ~src:exit_ ~dst:o_exit ()))
        (State.out_edges st exit_);
      (* Maps without inputs/outputs still need scope-structure edges so
         the original map is dominated by the new outer entry. *)
      if State.in_edges st entry = [] then
        ignore (State.add_edge st ~src:o_entry ~dst:entry ());
      if State.out_edges st exit_ = [] then
        ignore (State.add_edge st ~src:exit_ ~dst:o_exit ()))

let map_tiling = map_tiling_sized ~tile_sizes:[ 32 ]

(* --- Vectorization ---------------------------------------------------------- *)

(* Strip-mine the innermost (last) map dimension by the vector width and
   mark the intra-vector map unrolled — the code generator turns it into
   vector extensions, and the machine model credits SIMD throughput. *)
let vectorization_width ~width =
  Xform.make ~name:"Vectorization"
    ~description:"Alters the data accesses to use vectors."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.map_entries st
             |> List.filter_map (fun (nid, m) ->
                    (* innermost: scope contains no further maps *)
                    let has_inner_map =
                      State.scope_nodes st nid
                      |> List.exists (fun x ->
                             match State.node st x with
                             | Map_entry _ -> true
                             | _ -> false)
                    in
                    let unit_stride =
                      match List.rev m.mp_ranges with
                      | r :: _ -> Expr.as_int r.Subset.stride = Some 1
                      | [] -> false
                    in
                    if (not has_inner_map) && unit_stride && not m.mp_unroll
                    then
                      Some
                        (Xform.candidate ~state:(State.id st)
                           ~note:(State.node_label st nid)
                           [ ("map", nid) ])
                    else None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let entry = role c "map" in
      let m = map_info st entry in
      let n = List.length m.mp_params in
      (* Expand so the last dimension is alone on an inner map, then turn
         that inner map into the vector lane loop. *)
      if n > 1 then begin
        let x = map_expansion_at ~split:(n - 1) in
        x.Xform.x_apply g
          (Xform.candidate ~state:c.Xform.c_state [ ("map", entry) ]);
        (* the inner map is the newest Map_entry in the state *)
        let inner =
          State.map_entries st |> List.map fst
          |> List.fold_left max 0
        in
        let im = map_info st inner in
        set_map_info st inner
          { im with mp_unroll = true; mp_schedule = Sequential };
        let tiled = map_tiling_sized ~tile_sizes:[ width ] in
        tiled.Xform.x_apply g
          (Xform.candidate ~state:c.Xform.c_state [ ("map", inner) ])
      end
      else begin
        set_map_info st entry
          { m with mp_unroll = true; mp_schedule = Sequential };
        let tiled = map_tiling_sized ~tile_sizes:[ width ] in
        tiled.Xform.x_apply g
          (Xform.candidate ~state:c.Xform.c_state [ ("map", entry) ])
      end)

let vectorization = vectorization_width ~width:8
