(* Subgraph pattern matching for transformations (paper §4.1: "to find
   matching subgraphs in SDFGs, we use the VF2 algorithm to find
   isomorphic subgraphs").

   A pattern is a small graph of role-named nodes with predicates, plus
   edge constraints between roles.  [match_state] enumerates injective
   assignments role -> node id such that every pattern edge is realized by
   at least one state edge satisfying its predicate — a VF2-style
   backtracking search ordered by pattern connectivity. *)

open Sdfg_ir
open Defs

type pnode = {
  p_role : string;
  p_pred : State.t -> int -> bool;
}

type pedge = {
  pe_src : string;
  pe_dst : string;
  pe_pred : State.t -> edge -> bool;
}

type t = {
  pat_nodes : pnode list;
  pat_edges : pedge list;
}

type assignment = (string * int) list

(* --- node predicates --------------------------------------------------- *)

let any_node _ _ = true

let is_access st nid =
  match State.node st nid with Access _ -> true | _ -> false

let is_transient_access g st nid =
  match State.node st nid with
  | Access d -> ddesc_transient (Sdfg.desc g d)
  | _ -> false

let is_tasklet st nid =
  match State.node st nid with Tasklet _ -> true | _ -> false

let is_map_entry st nid =
  match State.node st nid with Map_entry _ -> true | _ -> false

let is_map_exit st nid =
  match State.node st nid with Map_exit -> true | _ -> false

let is_reduce st nid =
  match State.node st nid with Reduce _ -> true | _ -> false

let is_nested st nid =
  match State.node st nid with Nested_sdfg _ -> true | _ -> false

let any_edge _ _ = true

(* --- constructors -------------------------------------------------------- *)

let node ?(pred = any_node) role = { p_role = role; p_pred = pred }

let edge ?(pred = any_edge) src dst =
  { pe_src = src; pe_dst = dst; pe_pred = pred }

(* A path graph, as used by RedundantArray (Appendix D:
   "node_path_graph"). *)
let path_graph (nodes : pnode list) : t =
  let rec edges = function
    | a :: (b :: _ as rest) -> edge a.p_role b.p_role :: edges rest
    | _ -> []
  in
  { pat_nodes = nodes; pat_edges = edges nodes }

let make nodes edges = { pat_nodes = nodes; pat_edges = edges }

(* --- matching -------------------------------------------------------------- *)

let match_state (pat : t) (st : State.t) : assignment list =
  let all_nodes = State.node_ids st in
  (* Order roles so each (after the first) is connected to an already
     placed role when possible — prunes the search like VF2's frontier. *)
  let order =
    let placed = ref [] in
    let remaining = ref pat.pat_nodes in
    let connected r =
      List.exists
        (fun e ->
          (e.pe_src = r.p_role && List.mem e.pe_dst !placed)
          || (e.pe_dst = r.p_role && List.mem e.pe_src !placed))
        pat.pat_edges
    in
    let out = ref [] in
    while !remaining <> [] do
      let next =
        match List.find_opt connected !remaining with
        | Some r -> r
        | None -> List.hd !remaining
      in
      remaining := List.filter (fun r -> r.p_role <> next.p_role) !remaining;
      placed := next.p_role :: !placed;
      out := next :: !out
    done;
    List.rev !out
  in
  let results = ref [] in
  let rec search (assigned : assignment) = function
    | [] ->
      (* all roles placed; all edges were checked incrementally *)
      results := List.rev assigned :: !results
    | (r : pnode) :: rest ->
      List.iter
        (fun nid ->
          if
            (not (List.exists (fun (_, n) -> n = nid) assigned))
            && r.p_pred st nid
          then begin
            (* check pattern edges whose endpoints are now both placed *)
            let assigned' = (r.p_role, nid) :: assigned in
            let ok =
              List.for_all
                (fun pe ->
                  match
                    List.assoc_opt pe.pe_src assigned',
                    List.assoc_opt pe.pe_dst assigned'
                  with
                  | Some s, Some d ->
                    List.exists
                      (fun (e : edge) -> e.e_dst = d && pe.pe_pred st e)
                      (State.out_edges st s)
                  | _ -> true)
                (List.filter
                   (fun pe -> pe.pe_src = r.p_role || pe.pe_dst = r.p_role)
                   pat.pat_edges)
            in
            if ok then search assigned' rest
          end)
        all_nodes
  in
  search [] order;
  (* Deterministic order: sort matches by the node ids they bind. *)
  List.sort
    (fun a b -> List.compare (fun (_, x) (_, y) -> Int.compare x y) a b)
    !results

(* Match in every state of an SDFG; results carry the state id. *)
let match_sdfg (pat : t) (g : Sdfg.t) : (int * assignment) list =
  Sdfg.states g
  |> List.concat_map (fun st ->
         List.map (fun a -> (State.id st, a)) (match_state pat st))
