(* Cleanup transformations — the small strict passes that keep SDFGs tidy
   after larger rewrites (DaCe ships these alongside Appendix B's
   library; they "can only improve performance" and run automatically
   after frontend processing, like RedundantArray in Appendix D). *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Helpers

(* --- TrivialMapElimination ---------------------------------------------------- *)

(* A map whose every dimension has exactly one iteration is a glorified
   begin/end bracket: substitute the single parameter values into the
   body's memlets and splice the scope out. *)
let trivial_map_elimination =
  Xform.make ~name:"TrivialMapElimination"
    ~description:
      "Removes maps with single-iteration ranges, substituting the \
       parameter value into the enclosed memlets."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.map_entries st
             |> List.filter_map (fun (nid, m) ->
                    let trivial =
                      List.for_all
                        (fun (r : Subset.range) ->
                          Expr.equal r.start r.stop
                          && Expr.as_int r.tile = Some 1)
                        m.mp_ranges
                    in
                    if trivial then
                      Some
                        (Xform.candidate ~state:(State.id st)
                           ~note:(State.node_label st nid)
                           [ ("map", nid) ])
                    else None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let entry = role c "map" in
      let exit_ = State.exit_of st entry in
      let m = map_info st entry in
      (* bind each parameter to its single value in the scope's memlets *)
      let bindings =
        List.map2 (fun p (r : Subset.range) -> (p, r.start)) m.mp_params
          m.mp_ranges
      in
      let members = State.scope_nodes st entry in
      List.iter
        (fun (e : edge) ->
          if List.mem e.e_src (entry :: exit_ :: members)
             || List.mem e.e_dst (entry :: exit_ :: members)
          then
            match e.e_memlet with
            | Some mm -> e.e_memlet <- Some (Memlet.subst_list bindings mm)
            | None -> ())
        (State.edges st);
      (* splice: src -> entry(IN_x) + entry(OUT_x) -> X  ==>  src -> X *)
      let splice scope_node =
        List.iter
          (fun (e_in : edge) ->
            match e_in.e_dst_conn with
            | Some cin
              when String.length cin > 3 && String.sub cin 0 3 = "IN_" ->
              let base = String.sub cin 3 (String.length cin - 3) in
              List.iter
                (fun (e_out : edge) ->
                  if e_out.e_src_conn = Some ("OUT_" ^ base) then
                    ignore
                      (State.add_edge st ~src:e_in.e_src
                         ?src_conn:e_in.e_src_conn
                         ?dst_conn:e_out.e_dst_conn ?memlet:e_out.e_memlet
                         ~dst:e_out.e_dst ()))
                (State.out_edges st scope_node)
            | _ -> ())
          (State.in_edges st scope_node)
      in
      splice entry;
      splice exit_;
      State.remove_node st entry;
      State.remove_node st exit_)

(* --- StateElimination ------------------------------------------------------------- *)

(* An empty state with one unconditional, assignment-free outgoing
   transition is pure overhead: route its predecessors directly to its
   successor. *)
let state_elimination =
  Xform.make ~name:"StateElimination"
    ~description:"Removes empty pass-through states from the state machine."
    ~find:(fun g ->
      Sdfg.states g
      |> List.filter_map (fun st ->
             let sid = State.id st in
             match Sdfg.out_transitions g sid with
             | [ t ]
               when State.num_nodes st = 0 && t.is_cond = Btrue
                    && t.is_assign = [] && t.is_dst <> sid
                    && Sdfg.num_states g > 1 ->
               Some
                 (Xform.candidate ~state:sid ~note:(State.label st)
                    [ ("next", t.is_dst) ])
             | _ -> None))
    ~apply:(fun g c ->
      let sid = c.Xform.c_state in
      let next = role c "next" in
      List.iter
        (fun (t : istate_edge) ->
          if t.is_dst = sid then
            Sdfg.replace_transition g t { t with is_dst = next })
        (Sdfg.transitions g);
      if State.id (Sdfg.start_state g) = sid then Sdfg.set_start g next;
      Sdfg.remove_state g sid)

(* --- PruneConnectors ----------------------------------------------------------------- *)

(* Scope connectors whose OUT_ side has no consumers are dead weight left
   behind by fusions: remove the dangling IN_ edges. *)
let prune_connectors =
  Xform.make ~name:"PruneConnectors"
    ~description:
      "Removes scope-entry connectors whose data is never consumed inside \
       the scope."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.map_entries st
             |> List.filter_map (fun (nid, _) ->
                    let dead =
                      State.in_edges st nid
                      |> List.exists (fun (e : edge) ->
                             match e.e_dst_conn with
                             | Some c
                               when String.length c > 3
                                    && String.sub c 0 3 = "IN_" ->
                               let base =
                                 String.sub c 3 (String.length c - 3)
                               in
                               not
                                 (List.exists
                                    (fun (e' : edge) ->
                                      e'.e_src_conn = Some ("OUT_" ^ base))
                                    (State.out_edges st nid))
                             | _ -> false)
                    in
                    if dead then
                      Some
                        (Xform.candidate ~state:(State.id st)
                           ~note:(State.node_label st nid)
                           [ ("map", nid) ])
                    else None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let nid = role c "map" in
      List.iter
        (fun (e : edge) ->
          match e.e_dst_conn with
          | Some cn when String.length cn > 3 && String.sub cn 0 3 = "IN_" ->
            let base = String.sub cn 3 (String.length cn - 3) in
            if
              not
                (List.exists
                   (fun (e' : edge) ->
                     e'.e_src_conn = Some ("OUT_" ^ base))
                   (State.out_edges st nid))
            then State.remove_edge st e.e_id
          | _ -> ())
        (State.in_edges st nid))

(* --- MapUnroll ---------------------------------------------------------------------- *)

(* Mark a constant-extent map for unrolling — on FPGAs this replicates
   processing elements (Fig. 7); on CPUs the code generator emits
   "#pragma unroll". *)
let map_unroll =
  Xform.make ~name:"MapUnroll"
    ~description:
      "Marks a constant-extent map unrolled (PE replication on FPGAs)."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.map_entries st
             |> List.filter_map (fun (nid, m) ->
                    let constant =
                      List.for_all
                        (fun (r : Subset.range) ->
                          Expr.is_constant r.start && Expr.is_constant r.stop)
                        m.mp_ranges
                    in
                    if constant && not m.mp_unroll then
                      Some
                        (Xform.candidate ~state:(State.id st)
                           ~note:(State.node_label st nid)
                           [ ("map", nid) ])
                    else None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let nid = role c "map" in
      let m = map_info st nid in
      set_map_info st nid { m with mp_unroll = true })

let all = [ trivial_map_elimination; state_elimination; prune_connectors;
            map_unroll ]
