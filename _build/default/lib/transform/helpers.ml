(* Shared graph-surgery utilities for transformations. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs

let role (c : Xform.candidate) name =
  match List.assoc_opt name c.c_nodes with
  | Some nid -> nid
  | None -> Xform.not_applicable "internal: role %S missing from candidate" name

let state_of g (c : Xform.candidate) = Sdfg.state g c.c_state

let map_info st nid =
  match State.node st nid with
  | Map_entry m -> m
  | _ -> Xform.not_applicable "node %d is not a map entry" nid

let set_map_info st nid info = State.replace_node st nid (Map_entry info)

let only_out_edge st nid =
  match State.out_edges st nid with
  | [ e ] -> e
  | es ->
    Xform.not_applicable "node %d has %d out-edges, expected 1" nid
      (List.length es)

let only_in_edge st nid =
  match State.in_edges st nid with
  | [ e ] -> e
  | es ->
    Xform.not_applicable "node %d has %d in-edges, expected 1" nid
      (List.length es)

(* Recreate an edge with new endpoints/connectors/memlet. *)
let reconnect st (e : edge) ~src ~src_conn ~dst ~dst_conn ~memlet =
  State.remove_edge st e.e_id;
  State.add_edge st ?src_conn ?dst_conn ?memlet ~src ~dst ()

(* Number of access nodes referring to [data] across all states. *)
let occurrence_count g data =
  Sdfg.states g
  |> List.map (fun st -> List.length (State.access_nodes_of st data))
  |> List.fold_left ( + ) 0

(* Rewrite every memlet in [st] that references container [from_] so that
   it references [to_], with subsets rebased by [origin] (the subset of
   [from_] that [to_] now holds; pass the whole-array subset for a pure
   rename).  Applied along full memlet paths so scope connectors stay
   consistent is the caller's job. *)
let retarget_memlets ~edges ~from_ ~to_ ~origin =
  List.iter
    (fun (e : edge) ->
      match e.e_memlet with
      | Some m when String.equal m.m_data from_ ->
        let subset = Subset.offset_by m.m_subset ~origin in
        e.e_memlet <-
          Some { m with m_data = to_; m_subset = subset }
      | _ -> ())
    edges

(* Rename scope connectors IN_<from>/OUT_<from> on an entry or exit node's
   adjacent edges. *)
let rename_scope_connectors st nid ~from_ ~to_ =
  let fix conn =
    match conn with
    | Some c when c = "IN_" ^ from_ -> Some ("IN_" ^ to_)
    | Some c when c = "OUT_" ^ from_ -> Some ("OUT_" ^ to_)
    | other -> other
  in
  List.iter
    (fun (e : edge) ->
      let src_conn = if e.e_src = nid then fix e.e_src_conn else e.e_src_conn in
      let dst_conn = if e.e_dst = nid then fix e.e_dst_conn else e.e_dst_conn in
      if src_conn <> e.e_src_conn || dst_conn <> e.e_dst_conn then
        ignore
          (reconnect st e ~src:e.e_src ~src_conn ~dst:e.e_dst ~dst_conn
             ~memlet:e.e_memlet))
    (State.in_edges st nid @ State.out_edges st nid)

(* Fresh interstate symbol name for [g]. *)
let fresh_symbol g prefix =
  let used = Sdfg.symbols g @ List.map fst (Sdfg.descs g) in
  if not (List.mem prefix used) then prefix
  else
    let rec go i =
      let cand = Fmt.str "%s_%d" prefix i in
      if List.mem cand used then go (i + 1) else cand
    in
    go 0

(* Shape (extents) of a subset: one symbolic extent per dimension. *)
let subset_extents (s : Subset.t) =
  List.map Subset.num_elements s

(* All map/consume parameters of a state, with their ranges. *)
let state_params st =
  State.nodes st
  |> List.concat_map (fun (_, n) ->
         match n with
         | Map_entry m -> List.combine m.mp_params m.mp_ranges
         | Consume_entry c ->
           [ (c.cs_pe_param,
              Subset.range Expr.zero (Expr.sub c.cs_num_pes Expr.one)) ]
         | _ -> [])

(* Parameter-free upper bounds of subset extents, used to size transients
   introduced inside scopes (LocalStorage's tmp must have an allocatable
   shape even though the cached window slides with the map parameter).
   The min-clipped ranges that MapTiling produces
   ([t_i : min(stop, t_i + T - 1)]) bound tightly to the tile size T;
   other parametric ranges fall back to interval analysis over the
   parameter ranges. *)
let bounded_extents st (s : Subset.t) =
  let params = state_params st in
  let param_names = List.map fst params in
  let is_param_free e =
    List.for_all (fun sym -> not (List.mem sym param_names)) (Expr.free_syms e)
  in
  let benv name =
    match List.assoc_opt name params with
    | Some (r : Subset.range) -> Some { Expr.lo = r.start; hi = r.stop }
    | None -> None
  in
  let rec bound_hi e fuel =
    if is_param_free e then e
    else if fuel = 0 then
      Xform.not_applicable
        "cannot bound extent %s independently of map parameters"
        (Expr.to_string e)
    else bound_hi (Expr.bounds benv e).Expr.hi (fuel - 1)
  in
  List.map
    (fun (r : Subset.range) ->
      let plain = Subset.num_elements r in
      if is_param_free plain then plain
      else
        (* min-clipped tile range: extent <= (y - start)/stride + 1 for
           either arm y of the Min *)
        let candidates =
          match r.stop with
          | Expr.Min (x, y) ->
            List.filter_map
              (fun arm ->
                let ext =
                  Expr.add
                    (Expr.div (Expr.sub arm r.start) r.stride)
                    Expr.one
                in
                if is_param_free ext then Some ext else None)
              [ x; y ]
          | _ -> []
        in
        match candidates with
        | ext :: _ -> ext
        | [] -> bound_hi plain 4)
    s

(* Insert a new state between [src] and every outgoing transition... no —
   insert [fresh] before state [sid] in the state machine: all transitions
   into [sid] are redirected to [fresh], and an unconditional transition
   [fresh] -> [sid] is added.  If [sid] was the start state, [fresh]
   becomes the start state. *)
let insert_state_before g ~sid ~label =
  let fresh = Sdfg.add_state g ~label () in
  let fid = State.id fresh in
  List.iter
    (fun (t : istate_edge) ->
      if t.is_dst = sid then
        Sdfg.replace_transition g t { t with is_dst = fid })
    (Sdfg.transitions g);
  ignore (Sdfg.add_transition g ~src:fid ~dst:sid ());
  if Sdfg.start_state g |> State.id = sid then Sdfg.set_start g fid;
  fresh

(* All edges on the memlet paths downstream of a scope-entry connector
   base [x]: the OUT_x edges of [entry] and, transitively, edges reached
   through further scope nodes. *)
let rec downstream_path_edges st entry base =
  State.out_edges st entry
  |> List.filter (fun (e : edge) -> e.e_src_conn = Some ("OUT_" ^ base))
  |> List.concat_map (fun (e : edge) ->
         e
         ::
         (if State.is_scope_entry st e.e_dst then
            match e.e_dst_conn with
            | Some c when String.length c > 3 && String.sub c 0 3 = "IN_" ->
              downstream_path_edges st e.e_dst
                (String.sub c 3 (String.length c - 3))
            | _ -> []
          else []))

(* Build a map-identity tasklet writing [value] to every element of
   [data]; used by transformations that must initialize a container with a
   reduction identity. *)
let add_init_map g st ~data ~value =
  let d = Sdfg.desc g data in
  let shape = ddesc_shape d in
  if shape = [] then begin
    let tk =
      Builder.Build.simple_tasklet g st ~name:("init_" ^ data) ~ins:[]
        ~outs:[ Builder.Build.out_elem "o" data [ Expr.zero ] ]
        ~code:(`Src (Fmt.str "o = %s" (Fmt.str "%a" Tasklang.Types.pp_value value)))
        ()
    in
    ignore tk
  end
  else begin
    let params = List.mapi (fun i _ -> Fmt.str "_ii%d" i) shape in
    let ranges = List.map Subset.full shape in
    let idxs = List.map Expr.sym params in
    ignore
      (Builder.Build.mapped_tasklet g st ~name:("init_" ^ data) ~params
         ~ranges ~ins:[]
         ~outs:[ Builder.Build.out_elem "o" data idxs ]
         ~code:
           (`Src (Fmt.str "o = %s" (Fmt.str "%a" Tasklang.Types.pp_value value)))
         ())
  end
