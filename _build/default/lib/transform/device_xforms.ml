(* Hardware-mapping transformations (paper Appendix B):
   GPUTransform, FPGATransform, MPITransform.

   GPU/FPGA transforms offload a CPU SDFG wholesale to the accelerator
   (§5: "we apply the FPGATransform automatic transformation to offload
   each Polybench application to the FPGA"): every non-transient array
   gains a device-resident transient twin, copy-in/copy-out states are
   added around the computation, all access nodes and memlets are
   retargeted to the device twins, and top-level map schedules switch to
   the device schedule. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Helpers

let whole_sdfg_candidate (g : Sdfg.t) ~already =
  (* applicable once: no container already carries the device storage *)
  if
    List.exists (fun (_, d) -> ddesc_storage d = already) (Sdfg.descs g)
  then []
  else
    [ Xform.candidate ~state:(State.id (Sdfg.start_state g))
        ~note:(Sdfg.name g) [] ]

let retarget_all_states g ~mapping =
  List.iter
    (fun st ->
      List.iter
        (fun (nid, n) ->
          match n with
          | Access d -> (
            match List.assoc_opt d mapping with
            | Some d' -> State.replace_node st nid (Access d')
            | None -> ())
          | _ -> ())
        (State.nodes st);
      List.iter
        (fun (e : edge) ->
          (match e.e_memlet with
          | Some m -> (
            match List.assoc_opt m.m_data mapping with
            | Some d' -> e.e_memlet <- Some { m with m_data = d' }
            | None -> ())
          | None -> ());
          (* scope connectors follow container names *)
          let fix conn =
            match conn with
            | Some c when String.length c > 3 && String.sub c 0 3 = "IN_" -> (
              let b = String.sub c 3 (String.length c - 3) in
              match List.assoc_opt b mapping with
              | Some b' -> Some ("IN_" ^ b')
              | None -> conn)
            | Some c when String.length c > 4 && String.sub c 0 4 = "OUT_" -> (
              let b = String.sub c 4 (String.length c - 4) in
              match List.assoc_opt b mapping with
              | Some b' -> Some ("OUT_" ^ b')
              | None -> conn)
            | other -> other
          in
          let src_conn = fix e.e_src_conn and dst_conn = fix e.e_dst_conn in
          if src_conn <> e.e_src_conn || dst_conn <> e.e_dst_conn then
            ignore
              (reconnect st e ~src:e.e_src ~src_conn ~dst:e.e_dst ~dst_conn
                 ~memlet:e.e_memlet))
        (State.edges st))
    (Sdfg.states g)

(* Containers with at least one write anywhere in the SDFG. *)
let written_containers g =
  Sdfg.states g
  |> List.concat_map (fun st ->
         State.access_nodes st
         |> List.filter_map (fun (nid, d) ->
                if State.in_degree st nid > 0 then Some d else None))
  |> List.sort_uniq String.compare

let read_containers g =
  Sdfg.states g
  |> List.concat_map (fun st ->
         State.access_nodes st
         |> List.filter_map (fun (nid, d) ->
                if State.out_degree st nid > 0 then Some d else None))
  |> List.sort_uniq String.compare

let device_transform ~name ~description ~prefix ~storage ~schedule
    ~top_schedule_from =
  Xform.make ~name ~description
    ~find:(fun g -> whole_sdfg_candidate g ~already:storage)
    ~apply:(fun g _c ->
      let host_arrays =
        Sdfg.descs g
        |> List.filter (fun (_, d) ->
               (not (ddesc_transient d)) && not (ddesc_is_stream d))
        |> List.map fst
      in
      let written = written_containers g and read = read_containers g in
      let orig_states = Sdfg.states g in
      let first_sid = State.id (Sdfg.start_state g) in
      (* device twins *)
      let mapping =
        List.map
          (fun a ->
            let d = Sdfg.desc g a in
            let dname = Sdfg.fresh_name g (prefix ^ a) in
            Sdfg.add_desc g dname (with_storage storage (with_transient true d));
            (a, dname))
          host_arrays
      in
      retarget_all_states g ~mapping;
      (* transient arrays also live on the device now *)
      List.iter
        (fun (dn, d) ->
          if
            ddesc_transient d
            && (not (ddesc_is_stream d))
            && (not (List.exists (fun (_, twin) -> String.equal twin dn) mapping))
            && ddesc_storage d = Default
          then Sdfg.replace_desc g dn (with_storage storage d))
        (Sdfg.descs g);
      (* schedules: top-level maps run on the device *)
      List.iter
        (fun st ->
          let parents = State.scope_parents st in
          List.iter
            (fun (nid, n) ->
              match n, Hashtbl.find parents nid with
              | Map_entry m, None when m.mp_schedule = Sequential
                                       || m.mp_schedule = Cpu_multicore ->
                State.replace_node st nid
                  (Map_entry { m with mp_schedule = schedule })
              | Map_entry m, Some _ when top_schedule_from m.mp_schedule ->
                State.replace_node st nid
                  (Map_entry { m with mp_schedule = Sequential })
              | Consume_entry cinfo, None ->
                State.replace_node st nid
                  (Consume_entry { cinfo with cs_schedule = schedule })
              | _ -> ())
            (State.nodes st))
        orig_states;
      (* Copy-in becomes the new start state (other transitions into the
         old start — e.g. loop back-edges — must NOT pass through it, or
         device results would be clobbered every iteration). *)
      let copy_in = Sdfg.add_state g ~label:"copy_in" () in
      ignore
        (Sdfg.add_transition g ~src:(State.id copy_in) ~dst:first_sid ());
      Sdfg.set_start g (State.id copy_in);
      (* Copy in every argument array: outputs may be accumulated into or
         partially written, so their prior contents must reach the device
         (conservative, as in DaCe's GPUTransformSDFG). *)
      ignore read;
      List.iter
        (fun (a, twin) ->
          if true then begin
            let src = State.add_node copy_in (Access a) in
            let dst = State.add_node copy_in (Access twin) in
            let shape = ddesc_shape (Sdfg.desc g a) in
            let sub =
              if shape = [] then [ Subset.index Expr.zero ]
              else Subset.of_shape shape
            in
            ignore
              (State.add_edge copy_in
                 ~memlet:{ (Memlet.simple a sub) with m_other = Some sub }
                 ~src ~dst ())
          end)
        mapping;
      (* Copy-out runs exactly when the original program would terminate:
         from every state, under the negation of all its outgoing
         conditions. *)
      let copy_out = Sdfg.add_state g ~label:"copy_out" () in
      List.iter
        (fun st ->
          if st.st_id <> State.id copy_out then begin
            let conds =
              Sdfg.out_transitions g st.st_id
              |> List.map (fun (t : istate_edge) -> t.is_cond)
            in
            if not (List.mem Btrue conds) then begin
              let none_taken =
                List.fold_left
                  (fun acc c -> Bexp.and_ acc (Bexp.negate c))
                  Bexp.true_ conds
              in
              ignore
                (Sdfg.add_transition g ~src:st.st_id ~dst:(State.id copy_out)
                   ~cond:none_taken ())
            end
          end)
        (Sdfg.states g);
      List.iter
        (fun (a, twin) ->
          if List.mem a written then begin
            let src = State.add_node copy_out (Access twin) in
            let dst = State.add_node copy_out (Access a) in
            let shape = ddesc_shape (Sdfg.desc g a) in
            let sub =
              if shape = [] then [ Subset.index Expr.zero ]
              else Subset.of_shape shape
            in
            ignore
              (State.add_edge copy_out
                 ~memlet:{ (Memlet.simple twin sub) with m_other = Some sub }
                 ~src ~dst ())
          end)
        mapping)

let gpu_transform =
  device_transform ~name:"GPUTransform"
    ~description:
      "Converts a CPU SDFG to run on a GPU, copying memory to it and \
       executing kernels."
    ~prefix:"gpu_" ~storage:Gpu_global ~schedule:Gpu_device
    ~top_schedule_from:(fun s -> s = Cpu_multicore)

let fpga_transform =
  device_transform ~name:"FPGATransform"
    ~description:
      "Converts a CPU SDFG to be fully invoked on an FPGA, copying memory \
       to the device."
    ~prefix:"fpga_" ~storage:Fpga_global ~schedule:Fpga_device
    ~top_schedule_from:(fun s -> s = Cpu_multicore)

(* MPITransform only changes schedules: each top-level map partitions its
   range across ranks. *)
let mpi_transform =
  Xform.make ~name:"MPITransform"
    ~description:
      "Converts a CPU Map to run using MPI, assigning work to ranks."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             let parents = State.scope_parents st in
             State.map_entries st
             |> List.filter_map (fun (nid, m) ->
                    if
                      Hashtbl.find parents nid = None
                      && m.mp_schedule <> Mpi
                    then
                      Some
                        (Xform.candidate ~state:(State.id st)
                           ~note:(State.node_label st nid)
                           [ ("map", nid) ])
                    else None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let entry = role c "map" in
      let m = map_info st entry in
      set_map_info st entry { m with mp_schedule = Mpi };
      ignore g)
