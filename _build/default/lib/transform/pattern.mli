(** Subgraph pattern matching for transformations (paper §4.1: "we use
    the VF2 algorithm to find isomorphic subgraphs").

    A pattern is a small graph of role-named node predicates plus edge
    constraints; {!match_state} enumerates injective role assignments via
    VF2-style backtracking ordered by pattern connectivity. *)

type pnode = { p_role : string; p_pred : Sdfg_ir.State.t -> int -> bool }

type pedge = {
  pe_src : string;
  pe_dst : string;
  pe_pred : Sdfg_ir.State.t -> Sdfg_ir.Defs.edge -> bool;
}

type t = { pat_nodes : pnode list; pat_edges : pedge list }

type assignment = (string * int) list
(** role name -> matched node id *)

(** {1 Node and edge predicates} *)

val any_node : Sdfg_ir.State.t -> int -> bool
val is_access : Sdfg_ir.State.t -> int -> bool
val is_transient_access : Sdfg_ir.Sdfg.t -> Sdfg_ir.State.t -> int -> bool
val is_tasklet : Sdfg_ir.State.t -> int -> bool
val is_map_entry : Sdfg_ir.State.t -> int -> bool
val is_map_exit : Sdfg_ir.State.t -> int -> bool
val is_reduce : Sdfg_ir.State.t -> int -> bool
val is_nested : Sdfg_ir.State.t -> int -> bool
val any_edge : Sdfg_ir.State.t -> Sdfg_ir.Defs.edge -> bool

(** {1 Construction} *)

val node : ?pred:(Sdfg_ir.State.t -> int -> bool) -> string -> pnode
val edge :
  ?pred:(Sdfg_ir.State.t -> Sdfg_ir.Defs.edge -> bool) ->
  string -> string -> pedge

val path_graph : pnode list -> t
(** A chain of nodes connected in order — the pattern shape used by
    RedundantArray (Appendix D's "node_path_graph"). *)

val make : pnode list -> pedge list -> t

(** {1 Matching} *)

val match_state : t -> Sdfg_ir.State.t -> assignment list
(** All injective matches, in a deterministic order. *)

val match_sdfg : t -> Sdfg_ir.Sdfg.t -> (int * assignment) list
(** Matches across every state, tagged with the state id. *)
