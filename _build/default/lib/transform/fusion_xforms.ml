(* Fusion transformations (paper Appendix B):
   MapFusion, MapReduceFusion (Fig. 11a), StateFusion. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Helpers

let conn_in_base (e : edge) =
  match e.e_dst_conn with
  | Some c when String.length c > 3 && String.sub c 0 3 = "IN_" ->
    Some (String.sub c 3 (String.length c - 3))
  | _ -> None

let conn_out_base (e : edge) =
  match e.e_src_conn with
  | Some c when String.length c > 4 && String.sub c 0 4 = "OUT_" ->
    Some (String.sub c 4 (String.length c - 4))
  | _ -> None

(* Substitute map parameters in all memlets inside a scope. *)
let subst_scope_params st entry (bindings : (string * Expr.t) list) =
  let members = entry :: State.exit_of st entry :: State.scope_nodes st entry in
  List.iter
    (fun (e : edge) ->
      if List.mem e.e_src members && List.mem e.e_dst members then
        match e.e_memlet with
        | Some m -> e.e_memlet <- Some (Memlet.subst_list bindings m)
        | None -> ())
    (State.edges st)

(* --- MapFusion ------------------------------------------------------------ *)

(* Pattern (strict): map_exit --T[..]--> access T --T[..]--> map_entry,
   where T is transient, written and read element-wise with identical
   index functions (after renaming the second map's parameters), both maps
   have identical ranges, and T occurs nowhere else. *)
let map_fusion =
  Xform.make ~name:"MapFusion"
    ~description:
      "Fuses two consecutive maps that have the same dimensions and range."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.access_nodes st
             |> List.filter_map (fun (t_nid, t_name) ->
                    match
                      State.in_edges st t_nid, State.out_edges st t_nid
                    with
                    | [ e_in ], [ e_out ]
                      when State.is_scope_exit st e_in.e_src
                           && State.is_scope_entry st e_out.e_dst ->
                      let exit1 = e_in.e_src and entry2 = e_out.e_dst in
                      let entry1 = State.entry_of st exit1 in
                      (match
                         State.node st entry1, State.node st entry2
                       with
                      | Map_entry m1, Map_entry m2
                        when List.length m1.mp_params
                             = List.length m2.mp_params
                             && List.for_all2
                                  (fun (a : Subset.range) (b : Subset.range) ->
                                    Subset.equal_range a b)
                                  m1.mp_ranges m2.mp_ranges
                             && ddesc_transient (Sdfg.desc g t_name)
                             && occurrence_count g t_name = 1 ->
                        (* single producer edge into exit1 for T *)
                        let producers =
                          State.in_edges st exit1
                          |> List.filter (fun e ->
                                 conn_in_base e = Some t_name)
                        in
                        if List.length producers = 1 then
                          Some
                            (Xform.candidate ~state:(State.id st)
                               ~note:t_name
                               [ ("entry1", entry1); ("exit1", exit1);
                                 ("array", t_nid); ("entry2", entry2);
                                 ("exit2", State.exit_of st entry2) ])
                        else None
                      | _ -> None)
                    | _ -> None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let entry1 = role c "entry1" and exit1 = role c "exit1" in
      let entry2 = role c "entry2" and exit2 = role c "exit2" in
      let t_nid = role c "array" in
      let t_name =
        match State.node st t_nid with Access d -> d | _ -> assert false
      in
      let m1 = map_info st entry1 and m2 = map_info st entry2 in
      (* 1. rename second map's parameters to the first map's *)
      let renaming =
        List.map2 (fun p2 p1 -> (p2, Expr.sym p1)) m2.mp_params m1.mp_params
      in
      subst_scope_params st entry2 renaming;
      (* 2. producer -> scalar transient -> consumers *)
      let producer =
        State.in_edges st exit1
        |> List.find (fun e -> conn_in_base e = Some t_name)
      in
      let sname = Sdfg.fresh_name g ("fused_" ^ t_name) in
      Sdfg.add_array g sname ~transient:true ~shape:[]
        ~dtype:(ddesc_dtype (Sdfg.desc g t_name));
      let snode = State.add_node st (Access sname) in
      ignore
        (reconnect st producer ~src:producer.e_src
           ~src_conn:producer.e_src_conn ~dst:snode ~dst_conn:None
           ~memlet:(Some (Memlet.simple sname [ Subset.index Expr.zero ])));
      List.iter
        (fun (e : edge) ->
          match conn_out_base e with
          | Some b when b = t_name ->
            ignore
              (reconnect st e ~src:snode ~src_conn:None ~dst:e.e_dst
                 ~dst_conn:e.e_dst_conn
                 ~memlet:
                   (Some (Memlet.simple sname [ Subset.index Expr.zero ])))
          | _ -> ())
        (State.out_edges st entry2);
      (* 3. other inputs of map2 enter through entry1 *)
      List.iter
        (fun (e : edge) ->
          match conn_in_base e with
          | Some b when b <> t_name ->
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn ~dst:entry1
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet)
          | _ -> ())
        (State.in_edges st entry2);
      List.iter
        (fun (e : edge) ->
          match conn_out_base e with
          | Some b when b <> t_name ->
            ignore
              (reconnect st e ~src:entry1 ~src_conn:e.e_src_conn ~dst:e.e_dst
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet)
          | _ -> ())
        (State.out_edges st entry2);
      (* 4. outputs of map1 other than T leave through exit2 *)
      List.iter
        (fun (e : edge) ->
          match conn_in_base e with
          | Some b when b <> t_name ->
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn ~dst:exit2
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet)
          | _ -> ())
        (State.in_edges st exit1);
      List.iter
        (fun (e : edge) ->
          match conn_out_base e with
          | Some b when b <> t_name ->
            ignore
              (reconnect st e ~src:exit2 ~src_conn:e.e_src_conn ~dst:e.e_dst
                 ~dst_conn:e.e_dst_conn ~memlet:e.e_memlet)
          | _ -> ())
        (State.out_edges st exit1);
      (* 5. the fused scope pairs entry1 with exit2 *)
      State.remove_node st exit1;
      State.remove_node st entry2;
      State.remove_node st t_nid;
      State.set_scope st ~entry:entry1 ~exit_:exit2;
      Sdfg.remove_desc g t_name)

(* --- MapReduceFusion (Fig. 11a) -------------------------------------------- *)

let map_reduce_fusion =
  Xform.make ~name:"MapReduceFusion"
    ~description:
      "Fuses a map and a reduction node with the same dimensions, using \
       conflict resolution."
    ~find:(fun g ->
      Sdfg.states g
      |> List.concat_map (fun st ->
             State.nodes st
             |> List.filter_map (fun (rid, n) ->
                    match n with
                    | Reduce r -> (
                      match
                        State.in_edges st rid, State.out_edges st rid
                      with
                      | [ e_in ], [ e_out ] -> (
                        let t_nid = e_in.e_src in
                        match State.node st t_nid with
                        | Access t_name
                          when ddesc_transient (Sdfg.desc g t_name)
                               && occurrence_count g t_name = 1
                               && State.in_degree st t_nid = 1
                               && State.out_degree st t_nid = 1
                               && State.is_scope_exit st
                                    (List.hd (State.in_edges st t_nid)).e_src
                               && Wcr.identity r.r_wcr
                                    (ddesc_dtype (Sdfg.desc g t_name))
                                  <> None ->
                          let exit_ =
                            (List.hd (State.in_edges st t_nid)).e_src
                          in
                          Some
                            (Xform.candidate ~state:(State.id st)
                               ~note:t_name
                               [ ("exit", exit_); ("array", t_nid);
                                 ("reduce", rid); ("out", e_out.e_dst) ])
                        | _ -> None)
                      | _ -> None)
                    | _ -> None)))
    ~apply:(fun g c ->
      let st = state_of g c in
      let exit_ = role c "exit" and t_nid = role c "array" in
      let rid = role c "reduce" and out_nid = role c "out" in
      let t_name =
        match State.node st t_nid with Access d -> d | _ -> assert false
      in
      let r_wcr, r_axes =
        match State.node st rid with
        | Reduce r -> (r.r_wcr, r.r_axes)
        | _ -> assert false
      in
      let out_edge = only_out_edge st rid in
      let out_m = Option.get out_edge.e_memlet in
      let out_name = out_m.m_data in
      let in_rank = ddesc_rank (Sdfg.desc g t_name) in
      let axes =
        match r_axes with
        | Some a -> a
        | None -> List.init in_rank Fun.id
      in
      let kept = List.filter (fun d -> not (List.mem d axes))
          (List.init in_rank Fun.id)
      in
      (* producer edges into the map exit switch to writing [out] with CR *)
      List.iter
        (fun (e : edge) ->
          match conn_in_base e, e.e_memlet with
          | Some b, Some m when b = t_name ->
            let new_subset =
              if kept = [] then [ Subset.index Expr.zero ]
              else List.map (fun d -> List.nth m.m_subset d) kept
            in
            ignore
              (reconnect st e ~src:e.e_src ~src_conn:e.e_src_conn ~dst:exit_
                 ~dst_conn:(Some ("IN_" ^ out_name))
                 ~memlet:
                   (Some
                      { m with
                        m_data = out_name;
                        m_subset = new_subset;
                        m_wcr = Some r_wcr }))
          | _ -> ())
        (State.in_edges st exit_);
      (* the exit now feeds the output container directly *)
      List.iter
        (fun (e : edge) ->
          match conn_out_base e with
          | Some b when b = t_name ->
            let shape = ddesc_shape (Sdfg.desc g out_name) in
            let outer =
              if shape = [] then
                Memlet.simple out_name [ Subset.index Expr.zero ]
              else Memlet.full out_name shape
            in
            ignore
              (reconnect st e ~src:exit_ ~src_conn:(Some ("OUT_" ^ out_name))
                 ~dst:out_nid ~dst_conn:None
                 ~memlet:(Some { outer with m_wcr = Some r_wcr }))
          | _ -> ())
        (State.out_edges st exit_);
      State.remove_node st t_nid;
      State.remove_node st rid;
      Sdfg.remove_desc g t_name;
      (* initialize the output with the reduction identity in a state
         executed beforehand *)
      let dt = ddesc_dtype (Sdfg.desc g out_name) in
      let identity = Option.get (Wcr.identity r_wcr dt) in
      let init_state =
        insert_state_before g ~sid:(State.id st)
          ~label:(Fmt.str "init_%s" out_name)
      in
      add_init_map g init_state ~data:out_name ~value:identity)

(* --- StateFusion ------------------------------------------------------------ *)

let state_fusion =
  Xform.make ~name:"StateFusion"
    ~description:"Fuses two states into one."
    ~find:(fun g ->
      Sdfg.transitions g
      |> List.filter_map (fun (t : istate_edge) ->
             if
               t.is_cond = Btrue && t.is_assign = []
               && t.is_src <> t.is_dst
               && List.length (Sdfg.out_transitions g t.is_src) = 1
               && List.length (Sdfg.in_transitions g t.is_dst) = 1
               && State.id (Sdfg.start_state g) <> t.is_dst
             then
               Some
                 (Xform.candidate ~state:t.is_src
                    ~note:(Fmt.str "%d+%d" t.is_src t.is_dst)
                    [ ("second", t.is_dst) ])
             else None))
    ~apply:(fun g c ->
      let s1 = state_of g c in
      let s2 = Sdfg.state g (role c "second") in
      (* sinks of s1 per container: access nodes that are written *)
      let writes1 = Hashtbl.create 8 in
      List.iter
        (fun (nid, d) ->
          if State.in_degree s1 nid > 0 then Hashtbl.replace writes1 d nid)
        (State.access_nodes s1);
      (* all of s1's access nodes per container, snapshotted before the
         merge brings s2's nodes in *)
      let all1 = Hashtbl.create 8 in
      List.iter
        (fun (nid, d) ->
          Hashtbl.replace all1 d
            (nid :: Option.value ~default:[] (Hashtbl.find_opt all1 d)))
        (State.access_nodes s1);
      (* copy s2's nodes and edges into s1 *)
      let remap = Hashtbl.create 16 in
      List.iter
        (fun (nid, n) ->
          let nid' = State.add_node s1 (State.clone_node n) in
          Hashtbl.replace remap nid nid')
        (State.nodes s2);
      List.iter
        (fun (e : edge) ->
          ignore
            (State.add_edge s1 ?src_conn:e.e_src_conn ?dst_conn:e.e_dst_conn
               ?memlet:e.e_memlet
               ~src:(Hashtbl.find remap e.e_src)
               ~dst:(Hashtbl.find remap e.e_dst)
               ()))
        (State.edges s2);
      List.iter
        (fun (nid, _) ->
          match Hashtbl.find_opt s2.st_scope_exit nid with
          | Some x ->
            State.set_scope s1 ~entry:(Hashtbl.find remap nid)
              ~exit_:(Hashtbl.find remap x)
          | None -> ())
        (State.nodes s2);
      (* serialize across the fusion seam: s1's accesses of a container
         happen-before anything in s2 that writes it (WAW/WAR), and s1's
         writers happen-before s2's readers (RAW).  Writes happen inside
         scopes, so ordering edges target the scope entry that produces
         the write, not the sink access node. *)
      List.iter
        (fun (nid, d) ->
          let nid' = Hashtbl.find remap nid in
          (* RAW: s1 writer -> s2 reader *)
          (match Hashtbl.find_opt writes1 d with
          | Some w
            when State.out_degree s1 nid' > 0 && State.in_degree s1 nid' = 0
            ->
            ignore (State.add_edge s1 ~src:w ~dst:nid' ())
          | _ -> ());
          (* WAW/WAR: any s1 access of d -> the producers feeding s2's
             writes of d.  Only in-edges originating on the s2 side count;
             serialization edges added above must not be re-processed. *)
          let from_s2 n =
            Hashtbl.fold (fun _ v acc -> acc || v = n) remap false
          in
          if State.in_degree s1 nid' > 0 then
            List.iter
              (fun (e : edge) ->
                if from_s2 e.e_src then begin
                  let target =
                    if State.is_scope_exit s1 e.e_src then
                      State.entry_of s1 e.e_src
                    else e.e_src
                  in
                  List.iter
                    (fun a1 ->
                      if
                        a1 <> nid' && a1 <> target
                        && not (List.mem target (State.successors s1 a1))
                      then ignore (State.add_edge s1 ~src:a1 ~dst:target ()))
                    (Option.value ~default:[] (Hashtbl.find_opt all1 d))
                end)
              (State.in_edges s1 nid'))
        (State.access_nodes s2);
      (* rewire the state machine: s2's outgoing transitions now leave s1 *)
      List.iter
        (fun (t : istate_edge) ->
          if t.is_src = State.id s2 then
            Sdfg.replace_transition g t { t with is_src = State.id s1 })
        (Sdfg.transitions g);
      Sdfg.remove_state g (State.id s2))
