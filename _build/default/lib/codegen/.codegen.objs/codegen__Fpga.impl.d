lib/codegen/fpga.ml: Buffer Common Defs Fmt Hashtbl List Option Sdfg Sdfg_ir State String Symbolic
