lib/codegen/codegen.ml: Common Cpu Fmt Fpga Gpu List Sdfg_ir String
