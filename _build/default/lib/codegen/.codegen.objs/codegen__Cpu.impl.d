lib/codegen/cpu.ml: Buffer Common Defs Fmt Fun Hashtbl List Option Sdfg Sdfg_ir State String Symbolic Tasklang Wcr
