lib/codegen/common.ml: Bexp Buffer Defs Fmt List Option Sdfg Sdfg_ir State String Symbolic Tasklang Wcr
