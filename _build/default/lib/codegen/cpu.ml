(* CPU dispatcher: generates C++/OpenMP source from an SDFG.

   Maps with the CPU_Multicore schedule become "#pragma omp parallel for"
   loop nests (§3.3); sequential maps become plain loops; consume scopes
   become a work loop over the stream; connected components of a state
   are emitted under "#pragma omp parallel sections" when there are
   several (§3.3: "different connected components ... are mapped to
   parallel sections in OpenMP"). *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Common

let rec emit_node ctx st ~params ~parallel nid =
  let g = ctx.g in
  match State.node st nid with
  | Access _ ->
    List.iter
      (fun (e : edge) ->
        match State.node st e.e_dst, e.e_memlet with
        | Access dst_name, Some m ->
          let src_name =
            match State.node st e.e_src with
            | Access d -> d
            | _ -> assert false
          in
          let d = Sdfg.desc g m.m_data in
          if ddesc_is_stream (Sdfg.desc g src_name) then
            line ctx "%s.drain(%s);" src_name dst_name
          else
            line ctx "std::memcpy(%s, %s, %s * sizeof(%s));" dst_name
              src_name
              (e2c (Subset.volume m.m_subset))
              (desc_ctype d)
        | _ -> ())
      (State.out_edges st nid)
  | Tasklet t ->
    emit_tasklet ctx st nid t ~params
      ~atomic:(if parallel then `Omp else `None)
  | Map_entry info -> emit_map ctx st ~params ~parallel nid info
  | Map_exit | Consume_exit -> ()
  | Consume_entry info -> emit_consume ctx st ~params ~parallel nid info
  | Reduce r -> emit_reduce ctx st nid r.r_wcr r.r_axes r.r_identity
  | Nested_sdfg nest ->
    line ctx "// nested SDFG %s" nest.n_sdfg.g_name;
    line ctx "%s(%s);"
      ("sdfg_" ^ nest.n_sdfg.g_name)
      (String.concat ", "
         (List.map
            (fun (e : edge) ->
              match e.e_memlet with
              | Some m -> subset_ptr g m
              | None -> "nullptr")
            (State.in_edges st nid @ State.out_edges st nid)))

and emit_scope_body ctx st ~params ~parallel entry =
  let parents = State.scope_parents st in
  let order = State.topological_order st in
  let body =
    List.filter (fun n -> Hashtbl.find parents n = Some entry) order
  in
  List.iter (emit_node ctx st ~params ~parallel) body

and emit_map ctx st ~params ~parallel nid (info : map_info) =
  let n = List.length info.mp_params in
  (match info.mp_schedule with
  | Cpu_multicore ->
    line ctx "#pragma omp parallel for%s"
      (if n > 1 then Fmt.str " collapse(%d)" n else "")
  | Mpi -> line ctx "// MPI: range partitioned across ranks"
  | _ -> ());
  if info.mp_unroll then line ctx "#pragma unroll";
  let parallel = parallel || info.mp_schedule = Cpu_multicore in
  List.iter2
    (fun p (r : Subset.range) ->
      line ctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
        (e2c r.start) p (e2c r.stop) p (e2c r.stride))
    info.mp_params info.mp_ranges;
  indented ctx (fun () ->
      emit_scope_body ctx st ~params:(params @ info.mp_params) ~parallel nid);
  List.iter (fun _ -> line ctx "}") info.mp_params

and emit_consume ctx st ~params ~parallel nid (info : consume_info) =
  ignore parallel;
  line ctx "// consume scope: %s workers over stream %s"
    (e2c info.cs_num_pes) info.cs_stream;
  block ctx
    (Fmt.str "while (!%s.empty())" info.cs_stream)
    (fun () ->
      line ctx "auto __element = %s.pop();" info.cs_stream;
      line ctx "long long %s = omp_get_thread_num();" info.cs_pe_param;
      emit_scope_body ctx st
        ~params:(params @ [ info.cs_pe_param ])
        ~parallel:true nid)

and emit_reduce ctx st nid wcr axes identity =
  let g = ctx.g in
  let in_m = Option.get (List.hd (State.in_edges st nid)).e_memlet in
  let out_m = Option.get (List.hd (State.out_edges st nid)).e_memlet in
  let in_shape = ddesc_shape (Sdfg.desc g in_m.m_data) in
  let rank = List.length in_shape in
  let axes =
    match axes with Some a -> a | None -> List.init rank Fun.id
  in
  line ctx "// reduce %s over axes [%s]" (Wcr.name wcr)
    (String.concat "; " (List.map string_of_int axes));
  (match identity with
  | Some v ->
    line ctx "std::fill(%s, %s + %s, %s);" out_m.m_data out_m.m_data
      (e2c (Subset.volume out_m.m_subset))
      (Fmt.str "%a" Tasklang.Types.pp_value v)
  | None -> ());
  let idx_names = List.init rank (fun i -> Fmt.str "__r%d" i) in
  List.iteri
    (fun i name ->
      line ctx "for (long long %s = 0; %s < %s; ++%s) {" name name
        (e2c (List.nth in_shape i))
        name)
    idx_names;
  indented ctx (fun () ->
      let kept =
        List.filteri (fun i _ -> not (List.mem i axes)) idx_names
      in
      let strides_in = shape_strides in_shape in
      let in_idx =
        String.concat " + "
          (List.map2 (fun s n -> Fmt.str "%s * %s" (e2c s) n) strides_in
             idx_names)
      in
      let out_shape = ddesc_shape (Sdfg.desc g out_m.m_data) in
      let out_idx =
        if kept = [] || out_shape = [] then "0"
        else
          String.concat " + "
            (List.map2
               (fun s n -> Fmt.str "%s * %s" (e2c s) n)
               (shape_strides out_shape) kept)
      in
      line ctx "%s"
        (wcr_writeback ~atomic:`None
           ~dest:(Fmt.str "%s[%s]" out_m.m_data out_idx)
           ~value:(Fmt.str "%s[%s]" in_m.m_data in_idx)
           (Some wcr)));
  List.iter (fun _ -> line ctx "}") idx_names

let emit_state ctx st =
  let parents = State.scope_parents st in
  let order = State.topological_order st in
  let top = List.filter (fun n -> Hashtbl.find parents n = None) order in
  let components = State.connected_components st in
  if List.length components > 1 then begin
    (* concurrent components -> parallel sections (§3.3) *)
    line ctx "#pragma omp parallel sections";
    block ctx "" (fun () ->
        List.iter
          (fun comp ->
            line ctx "#pragma omp section";
            block ctx "" (fun () ->
                List.iter
                  (fun nid ->
                    if List.mem nid comp then
                      emit_node ctx st ~params:[] ~parallel:false nid)
                  top))
          components)
  end
  else List.iter (emit_node ctx st ~params:[] ~parallel:false) top

let generate (g : Sdfg.t) : string =
  let ctx = make_ctx g in
  line ctx "// Generated by the SDFG compiler — CPU (C++/OpenMP) target";
  line ctx "#include <cstring>";
  line ctx "#include <cmath>";
  line ctx "#include <algorithm>";
  line ctx "#include <omp.h>";
  line ctx "#include \"sdfg_runtime.h\"  // streams, thin runtime (§1)";
  line ctx "";
  block ctx
    (Fmt.str "extern \"C\" void sdfg_%s(%s)" (Sdfg.name g) (signature g))
    (fun () ->
      emit_transient_allocation ctx
        ~storage_filter:(fun s -> s <> Gpu_global)
        ~alloc:(fun ctx name d ->
          if ddesc_is_stream d then
            line ctx "sdfg::stream<%s> %s;" (desc_ctype d) name
          else if ddesc_shape d = [] then
            line ctx "%s %s_storage = 0; %s* %s = &%s_storage;"
              (desc_ctype d) name (desc_ctype d) name name
          else
            line ctx "%s* %s = new %s[%s];" (desc_ctype d) name
              (desc_ctype d)
              (e2c (total_size (ddesc_shape d))));
      emit_state_machine ctx ~emit_state;
      (* free transients *)
      List.iter
        (fun (name, d) ->
          if ddesc_transient d && (not (ddesc_is_stream d))
             && ddesc_shape d <> [] then
            line ctx "delete[] %s;" name)
        (Sdfg.descs g));
  Buffer.contents ctx.buf
