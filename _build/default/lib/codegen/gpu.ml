(* GPU dispatcher: generates CUDA source from an SDFG.

   Maps with the GPU_Device schedule become __global__ kernels with the
   map range as grid/thread-block indices (§3.3); copies between host and
   GPU_Global containers become cudaMemcpy calls; different connected
   components are assigned to different CUDA streams (§3.3). *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Common

(* Containers live on host or device depending on storage. *)
let on_device g name =
  match ddesc_storage (Sdfg.desc g name) with
  | Gpu_global | Gpu_shared -> true
  | _ -> false

type kernels = { mutable decls : string list; mutable count : int }

let rec emit_kernel_body ctx st ~params nid =
  let parents = State.scope_parents st in
  let order = State.topological_order st in
  let body =
    List.filter (fun n -> Hashtbl.find parents n = Some nid) order
  in
  List.iter
    (fun n ->
      match State.node st n with
      | Tasklet t -> emit_tasklet ctx st n t ~params ~atomic:`Cuda
      | Map_entry info ->
        (* nested maps inside a kernel: thread-block or sequential loops *)
        if info.mp_unroll then line ctx "#pragma unroll";
        List.iter2
          (fun p (r : Subset.range) ->
            line ctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride))
          info.mp_params info.mp_ranges;
        indented ctx (fun () ->
            emit_kernel_body ctx st ~params:(params @ info.mp_params) n);
        List.iter (fun _ -> line ctx "}") info.mp_params
      | Access d when ddesc_storage (Sdfg.desc ctx.g d) = Gpu_shared ->
        line ctx "__shared__ %s %s[%s];"
          (desc_ctype (Sdfg.desc ctx.g d))
          d
          (e2c (total_size (ddesc_shape (Sdfg.desc ctx.g d))));
        line ctx "__syncthreads();"
      | Access _ | Map_exit | Consume_exit -> ()
      | Reduce _ -> line ctx "// in-kernel reduce lowered to WCR atomics"
      | Consume_entry _ ->
        line ctx "// consume scope: grid-wide work queue (atomics)"
      | Nested_sdfg nest ->
        line ctx "// inlined nested SDFG %s" nest.n_sdfg.g_name)
    body

let emit_device_map ctx kernels st nid (info : map_info) =
  let g = ctx.g in
  kernels.count <- kernels.count + 1;
  let kname = Fmt.str "%s_kernel%d" (Sdfg.name g) kernels.count in
  (* kernel parameters: containers referenced by the scope's memlets *)
  let used =
    (State.scope_nodes st nid
     |> List.concat_map (fun n ->
            State.in_edges st n @ State.out_edges st n)
     |> List.filter_map (fun (e : edge) ->
            Option.map (fun m -> m.m_data) e.e_memlet))
    @ (State.in_edges st nid @ State.out_edges st (State.exit_of st nid)
       |> List.filter_map (fun (e : edge) ->
              Option.map (fun m -> m.m_data) e.e_memlet))
    |> List.sort_uniq String.compare
  in
  let formals =
    List.map
      (fun d -> Fmt.str "%s* %s" (desc_ctype (Sdfg.desc g d)) d)
      used
    @ List.map (fun s -> Fmt.str "long long %s" s) (Sdfg.free_symbols g)
  in
  (* the kernel itself, collected into the prelude *)
  let kctx = make_ctx g in
  block kctx (Fmt.str "__global__ void %s(%s)" kname (String.concat ", " formals))
    (fun () ->
      (* map range -> grid: first dimension on x, rest sequential *)
      (match info.mp_params, info.mp_ranges with
      | p0 :: prest, r0 :: rrest ->
        line kctx
          "long long %s = %s + (blockIdx.x * blockDim.x + threadIdx.x) * %s;"
          p0 (e2c r0.start) (e2c r0.stride);
        line kctx "if (%s > %s) return;" p0 (e2c r0.stop);
        List.iter2
          (fun p (r : Subset.range) ->
            line kctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride))
          prest rrest;
        indented kctx (fun () ->
            emit_kernel_body kctx st ~params:info.mp_params nid);
        List.iter (fun _ -> line kctx "}") prest
      | _ -> assert false));
  kernels.decls <- kernels.decls @ [ Buffer.contents kctx.buf ];
  (* host-side launch *)
  let trips = e2c (Subset.num_elements (List.hd info.mp_ranges)) in
  line ctx "{";
  indented ctx (fun () ->
      line ctx "dim3 __block(256);";
      line ctx "dim3 __grid((%s + 255) / 256);" trips;
      line ctx "%s<<<__grid, __block, 0, __stream0>>>(%s);" kname
        (String.concat ", " (used @ Sdfg.free_symbols g)));
  line ctx "}"

let emit_copy ctx st (e : edge) =
  let g = ctx.g in
  match State.node st e.e_src, State.node st e.e_dst, e.e_memlet with
  | Access src, Access dst, Some m ->
    let dir =
      match on_device g src, on_device g dst with
      | false, true -> "cudaMemcpyHostToDevice"
      | true, false -> "cudaMemcpyDeviceToHost"
      | true, true -> "cudaMemcpyDeviceToDevice"
      | false, false -> "cudaMemcpyHostToHost"
    in
    line ctx "cudaMemcpyAsync(%s, %s, %s * sizeof(%s), %s, __stream0);" dst
      src
      (e2c (Subset.volume m.m_subset))
      (desc_ctype (Sdfg.desc g m.m_data))
      dir
  | _ -> ()

let emit_state ctx kernels st =
  let parents = State.scope_parents st in
  let order = State.topological_order st in
  let top = List.filter (fun n -> Hashtbl.find parents n = None) order in
  List.iter
    (fun nid ->
      match State.node st nid with
      | Map_entry info when info.mp_schedule = Gpu_device ->
        emit_device_map ctx kernels st nid info
      | Map_entry info ->
        (* residual host map (e.g. sequential glue) *)
        List.iter2
          (fun p (r : Subset.range) ->
            line ctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride))
          info.mp_params info.mp_ranges;
        indented ctx (fun () -> emit_kernel_body ctx st ~params:info.mp_params nid);
        List.iter (fun _ -> line ctx "}") info.mp_params
      | Access _ -> List.iter (emit_copy ctx st) (State.out_edges st nid)
      | Tasklet t -> emit_tasklet ctx st nid t ~params:[] ~atomic:`None
      | Reduce _ -> line ctx "// device reduction (cub::DeviceReduce)"
      | Consume_entry _ -> line ctx "// device work queue"
      | Map_exit | Consume_exit -> ()
      | Nested_sdfg nest -> line ctx "// nested SDFG %s" nest.n_sdfg.g_name)
    top;
  line ctx "cudaStreamSynchronize(__stream0);"

let generate (g : Sdfg.t) : string =
  let ctx = make_ctx g in
  let kernels = { decls = []; count = 0 } in
  let body_ctx = make_ctx g in
  block body_ctx
    (Fmt.str "extern \"C\" void sdfg_%s(%s)" (Sdfg.name g) (signature g))
    (fun () ->
      line body_ctx "cudaStream_t __stream0;";
      line body_ctx "cudaStreamCreate(&__stream0);";
      emit_transient_allocation body_ctx
        ~storage_filter:(fun _ -> true)
        ~alloc:(fun ctx name d ->
          match ddesc_storage d with
          | Gpu_global ->
            line ctx "%s* %s;" (desc_ctype d) name;
            line ctx "cudaMalloc(&%s, %s * sizeof(%s));" name
              (e2c (total_size (ddesc_shape d)))
              (desc_ctype d)
          | _ ->
            if ddesc_is_stream d then
              line ctx "sdfg::stream<%s> %s;" (desc_ctype d) name
            else if ddesc_shape d = [] then
              line ctx "%s %s_storage = 0; %s* %s = &%s_storage;"
                (desc_ctype d) name (desc_ctype d) name name
            else
              line ctx "%s* %s = new %s[%s];" (desc_ctype d) name
                (desc_ctype d)
                (e2c (total_size (ddesc_shape d))));
      emit_state_machine body_ctx ~emit_state:(fun ctx st ->
          emit_state ctx kernels st);
      List.iter
        (fun (name, d) ->
          if ddesc_transient d && ddesc_storage d = Gpu_global then
            line body_ctx "cudaFree(%s);" name)
        (Sdfg.descs g));
  line ctx "// Generated by the SDFG compiler — GPU (CUDA) target";
  line ctx "#include <cuda_runtime.h>";
  line ctx "#include <cmath>";
  line ctx "#include \"sdfg_runtime.h\"";
  line ctx "";
  List.iter (fun k -> raw ctx k) kernels.decls;
  line ctx "";
  raw ctx (Buffer.contents body_ctx.buf);
  Buffer.contents ctx.buf
