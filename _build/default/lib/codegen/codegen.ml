(* Code-generation entry point (§4.3).

   [generate] runs the compilation pipeline on a validated SDFG: data
   dependency inference (step ❶: validation + memlet propagation), then
   target code emission (step ❷).  Step ❸ — invoking gcc/nvcc/SDAccel —
   is replaced in this reproduction by the machine model, which executes
   the scheduled SDFG on a simulated device (see DESIGN.md). *)

module Common = Common
module Cpu = Cpu
module Gpu = Gpu
module Fpga = Fpga

type target = Common.target = Target_cpu | Target_gpu | Target_fpga

let runtime_header =
  {|// sdfg_runtime.h — thin runtime infrastructure (paper Fig. 1)
#pragma once
#include <deque>
namespace sdfg {
// Multi-producer stream container with push/pop semantics (Table 1).
template <typename T> struct stream {
  std::deque<T> q;
  void push(const T& v) { q.push_back(v); }
  T pop() { T v = q.front(); q.pop_front(); return v; }
  bool empty() const { return q.empty(); }
  size_t size() const { return q.size(); }
  template <typename U> void drain(U* out) {
    size_t i = 0;
    while (!q.empty()) { out[i++] = pop(); }
  }
};
}  // namespace sdfg
|}

let generate ?(validate = true) (target : target) (g : Sdfg_ir.Sdfg.t) :
    (string * string) list =
  Sdfg_ir.Propagate.propagate g;
  if validate then Sdfg_ir.Validate.check g;
  let name = Sdfg_ir.Sdfg.name g in
  match target with
  | Target_cpu ->
    [ ("sdfg_runtime.h", runtime_header); (name ^ ".cpp", Cpu.generate g) ]
  | Target_gpu ->
    [ ("sdfg_runtime.h", runtime_header); (name ^ ".cu", Gpu.generate g) ]
  | Target_fpga ->
    [ ("sdfg_runtime.h", runtime_header);
      (name ^ "_hls.cpp", Fpga.generate g) ]

let generate_string ?(validate = true) target g =
  generate ~validate target g
  |> List.map (fun (f, c) -> Fmt.str "// ===== %s =====\n%s" f c)
  |> String.concat "\n"
