(* Shared helpers for the hierarchical code generator (§4.3 step ❷).

   Code generation "begins by emitting external interface code and the
   top-level state machine.  Within each state, nodes are traversed in
   topological order, and a platform-specific dispatcher is assigned to
   generate the respective code".  The target modules ({!Cpu}, {!Gpu},
   {!Fpga}) provide the dispatchers; this module holds the pieces they
   share: linearized index expressions, tasklet prologues/epilogues, and
   the emission context. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs

type target = Target_cpu | Target_gpu | Target_fpga

let target_name = function
  | Target_cpu -> "cpu"
  | Target_gpu -> "cuda"
  | Target_fpga -> "fpga"

type ctx = {
  buf : Buffer.t;
  mutable indent : int;
  mutable fresh : int;
  g : Sdfg.t;
}

let make_ctx g = { buf = Buffer.create 4096; indent = 0; fresh = 0; g }

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Fmt.str "__%s%d" prefix ctx.fresh

let line ctx fmt =
  Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
  Fmt.kstr
    (fun s ->
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let raw ctx s = Buffer.add_string ctx.buf s

let indented ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let block ctx header f =
  line ctx "%s {" header;
  indented ctx f;
  line ctx "}"

(* --- types and declarations ------------------------------------------------ *)

let ctype dt = Tasklang.Types.dtype_ctype dt

let desc_ctype d = ctype (ddesc_dtype d)

(* Row-major symbolic strides of an array shape. *)
let shape_strides shape =
  let rec go = function
    | [] -> []
    | [ _ ] -> [ Expr.one ]
    | _ :: rest ->
      let tail = go rest in
      Expr.mul (List.hd tail) (List.hd rest) :: tail
  in
  go shape

let total_size shape = Expr.product shape

(* Linear index expression for accessing [shape] at the start of
   [subset]. *)
let linear_index shape (subset : Subset.t) =
  let strides = shape_strides shape in
  if shape = [] then Expr.zero
  else
    Expr.sum
      (List.map2 (fun st (r : Subset.range) -> Expr.mul st r.start) strides
         subset)

let e2c e = Expr.to_string e

(* Pointer expression to the start of a memlet's subset. *)
let subset_ptr g (m : memlet) =
  let d = Sdfg.desc g m.m_data in
  let idx = linear_index (ddesc_shape d) m.m_subset in
  if Expr.equal idx Expr.zero then m.m_data
  else Fmt.str "&%s[%s]" m.m_data (e2c idx)

(* Scalar element expression of a memlet addressing one element. *)
let subset_elem g (m : memlet) =
  let d = Sdfg.desc g m.m_data in
  let idx = linear_index (ddesc_shape d) m.m_subset in
  Fmt.str "%s[%s]" m.m_data (e2c idx)

(* --- tasklet emission -------------------------------------------------------- *)

(* Appendix A.2.2, tasklet rule: generate a prologue P1 binding input
   connectors, P2 declaring outputs, the code, and an epilogue Ep writing
   outputs back through their memlets. *)
let connector_of (t : tasklet) name =
  match
    List.find_opt (fun c -> c.k_name = name) (t.t_inputs @ t.t_outputs)
  with
  | Some c -> c
  | None -> invalid "codegen: tasklet %S has no connector %S" t.t_name name

let tasklet_typecheck_conns (t : tasklet) ~extra =
  List.map
    (fun c ->
      { Tasklang.Typecheck.c_name = c.k_name; c_dtype = c.k_dtype;
        c_rank = c.k_rank })
    (t.t_inputs @ t.t_outputs)
  @ List.map
      (fun p ->
        { Tasklang.Typecheck.c_name = p; c_dtype = Tasklang.Types.I64;
          c_rank = 0 })
      extra

(* WCR write-back statement; [atomic] chooses the target's conflict
   primitive. *)
let wcr_writeback ~atomic ~dest ~value = function
  | None -> Fmt.str "%s = %s;" dest value
  | Some w ->
    let combined = Wcr.to_c w ~old_e:dest ~new_e:value in
    (match w, atomic with
    | Wcr_sum, `Omp -> Fmt.str "#pragma omp atomic\n%s += %s;" dest value
    | Wcr_sum, `Cuda -> Fmt.str "atomicAdd(&%s, %s);" dest value
    | Wcr_min, `Cuda -> Fmt.str "atomicMin(&%s, %s);" dest value
    | Wcr_max, `Cuda -> Fmt.str "atomicMax(&%s, %s);" dest value
    | _, `None -> Fmt.str "%s = %s;" dest combined
    | _, `Omp ->
      Fmt.str "#pragma omp critical\n{ %s = %s; }" dest combined
    | _, `Cuda -> Fmt.str "/* CAS loop */ %s = %s;" dest combined)

let emit_tasklet ctx st nid (t : tasklet) ~params ~atomic =
  let g = ctx.g in
  let in_edges =
    State.in_edges st nid
    |> List.filter (fun (e : edge) -> e.e_dst_conn <> None && e.e_memlet <> None)
  in
  let out_edges =
    State.out_edges st nid
    |> List.filter (fun (e : edge) -> e.e_src_conn <> None && e.e_memlet <> None)
  in
  block ctx "" (fun () ->
      (* P1: input connector bindings *)
      List.iter
        (fun (e : edge) ->
          let conn = Option.get e.e_dst_conn in
          let m = Option.get e.e_memlet in
          let c = connector_of t conn in
          if ddesc_is_stream (Sdfg.desc g m.m_data) then
            line ctx "const %s %s = %s.pop();" (ctype c.k_dtype) conn
              m.m_data
          else if c.k_rank = 0 then
            line ctx "const %s %s = %s;" (ctype c.k_dtype) conn
              (subset_elem g m)
          else
            line ctx "const %s* %s = %s;" (ctype c.k_dtype) conn
              (subset_ptr g m))
        in_edges;
      (* P2: output declarations (pointers write through directly) *)
      List.iter
        (fun (e : edge) ->
          let conn = Option.get e.e_src_conn in
          let m = Option.get e.e_memlet in
          let c = connector_of t conn in
          if c.k_rank = 0 || ddesc_is_stream (Sdfg.desc g m.m_data) then
            line ctx "%s %s;" (ctype c.k_dtype) conn
          else
            line ctx "%s* %s = %s;" (ctype c.k_dtype) conn (subset_ptr g m))
        out_edges;
      (* the code itself, immutable through transformations (§3.2) *)
      (match t.t_code with
      | Code code ->
        let extra =
          params @ Sdfg.free_symbols g
          @ (Sdfg.transitions g
            |> List.concat_map (fun (tr : istate_edge) ->
                   List.map fst tr.is_assign))
        in
        let connectors = tasklet_typecheck_conns t ~extra in
        raw ctx
          (Tasklang.Emit.to_c ~indent:(2 * (ctx.indent + 0)) ~connectors code)
      | External { language; code } ->
        line ctx "// external %s tasklet" language;
        raw ctx code;
        raw ctx "\n");
      (* Ep: scalar outputs write back through their memlets *)
      List.iter
        (fun (e : edge) ->
          let conn = Option.get e.e_src_conn in
          let m = Option.get e.e_memlet in
          let c = connector_of t conn in
          if ddesc_is_stream (Sdfg.desc g m.m_data) then
            line ctx "%s.push(%s);" m.m_data conn
          else if c.k_rank = 0 then
            line ctx "%s"
              (wcr_writeback ~atomic ~dest:(subset_elem g m) ~value:conn
                 m.m_wcr))
        out_edges)

(* --- state machine ------------------------------------------------------------ *)

let assigned_symbols g =
  Sdfg.transitions g
  |> List.concat_map (fun (t : istate_edge) -> List.map fst t.is_assign)
  |> List.sort_uniq String.compare
  |> List.filter (fun s -> not (List.mem s (Sdfg.symbols g)))

(* Emit the top-level state machine with conditional gotos (§4.3: "or
   using conditional goto statements as a fallback"). *)
let emit_state_machine ctx ~emit_state =
  let g = ctx.g in
  line ctx "// state machine";
  List.iter
    (fun (s, e) -> line ctx "long long %s = 0; (void)%s;" s e)
    (List.map (fun s -> (s, s)) (assigned_symbols g));
  line ctx "goto __state_%d;" (State.id (Sdfg.start_state g));
  List.iter
    (fun st ->
      line ctx "__state_%d: {" (State.id st);
      indented ctx (fun () -> emit_state ctx st);
      (* transitions *)
      indented ctx (fun () ->
          List.iter
            (fun (t : istate_edge) ->
              block ctx (Fmt.str "if (%s)" (Bexp.to_c t.is_cond)) (fun () ->
                  List.iter
                    (fun (s, e) -> line ctx "%s = %s;" s (e2c e))
                    t.is_assign;
                  line ctx "goto __state_%d;" t.is_dst))
            (Sdfg.out_transitions g (State.id st));
          line ctx "goto __exit;");
      line ctx "}")
    (Sdfg.states g);
  line ctx "__exit: ;"

(* Allocation of transient containers. *)
let emit_transient_allocation ctx ~storage_filter ~alloc =
  List.iter
    (fun (name, d) ->
      if ddesc_transient d && storage_filter (ddesc_storage d) then
        alloc ctx name d)
    (Sdfg.descs ctx.g)

(* Entry-point signature: non-transient containers then symbols
   ("arguments" of the generated library). *)
let signature g =
  let args =
    List.map
      (fun (name, d) ->
        if ddesc_shape d = [] && not (ddesc_is_stream d) then
          Fmt.str "%s* %s" (desc_ctype d) name
        else Fmt.str "%s* %s" (desc_ctype d) name)
      (Sdfg.arguments g)
  in
  let syms = List.map (fun s -> Fmt.str "long long %s" s) (Sdfg.free_symbols g) in
  String.concat ", " (args @ syms)
