(* FPGA dispatcher: generates HLS C++ from an SDFG.

   Maps with the FPGA_Device schedule synthesize hardware modules
   (processing elements, §3.3); FPGA_Unrolled maps replicate processing
   elements (the systolic-array pattern of Fig. 7); Stream containers
   instantiate FIFO interfaces (hls::stream) that connect modules (§3.1);
   concurrent connected components become a DATAFLOW region. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Sdfg_ir
open Defs
open Common

type modules = { mutable decls : string list; mutable count : int }

let rec emit_module_body ctx st ~params nid =
  let parents = State.scope_parents st in
  let order = State.topological_order st in
  let body =
    List.filter (fun n -> Hashtbl.find parents n = Some nid) order
  in
  List.iter
    (fun n ->
      match State.node st n with
      | Tasklet t -> emit_tasklet ctx st n t ~params ~atomic:`None
      | Map_entry info ->
        if info.mp_unroll then line ctx "#pragma HLS UNROLL";
        List.iter2
          (fun p (r : Subset.range) ->
            line ctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride);
            if not info.mp_unroll then line ctx "#pragma HLS PIPELINE II=1")
          info.mp_params info.mp_ranges;
        indented ctx (fun () ->
            emit_module_body ctx st ~params:(params @ info.mp_params) n);
        List.iter (fun _ -> line ctx "}") info.mp_params
      | Access d when ddesc_storage (Sdfg.desc ctx.g d) = Fpga_local ->
        line ctx "%s %s[%s];"
          (desc_ctype (Sdfg.desc ctx.g d))
          d
          (e2c (total_size (ddesc_shape (Sdfg.desc ctx.g d))));
        line ctx "#pragma HLS ARRAY_PARTITION variable=%s complete" d
      | Access _ | Map_exit | Consume_exit -> ()
      | Reduce _ -> line ctx "// accumulator module"
      | Consume_entry _ -> line ctx "// dynamic stream consumer"
      | Nested_sdfg nest -> line ctx "// nested SDFG %s" nest.n_sdfg.g_name)
    body

let emit_device_map ctx modules st nid (info : map_info) =
  let g = ctx.g in
  modules.count <- modules.count + 1;
  let mname = Fmt.str "%s_module%d" (Sdfg.name g) modules.count in
  let used =
    State.scope_nodes st nid
    |> List.concat_map (fun n -> State.in_edges st n @ State.out_edges st n)
    |> List.filter_map (fun (e : edge) ->
           Option.map (fun m -> m.m_data) e.e_memlet)
    |> List.sort_uniq String.compare
  in
  let formal d =
    let desc = Sdfg.desc g d in
    if ddesc_is_stream desc then
      Fmt.str "hls::stream<%s>& %s" (desc_ctype desc) d
    else Fmt.str "%s* %s" (desc_ctype desc) d
  in
  let mctx = make_ctx g in
  block mctx
    (Fmt.str "void %s(%s)" mname
       (String.concat ", "
          (List.map formal used
           @ List.map (fun s -> Fmt.str "long long %s" s)
               (Sdfg.free_symbols g))))
    (fun () ->
      line mctx "#pragma HLS INTERFACE m_axi port=%s"
        (String.concat "," used);
      if info.mp_unroll || info.mp_schedule = Fpga_unrolled then begin
        (* replicated processing elements (systolic array, Fig. 7) *)
        List.iter2
          (fun p (r : Subset.range) ->
            line mctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride);
            line mctx "#pragma HLS UNROLL  // one processing element per %s"
              p)
          info.mp_params info.mp_ranges
      end
      else
        List.iter2
          (fun p (r : Subset.range) ->
            line mctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride);
            line mctx "#pragma HLS PIPELINE II=1")
          info.mp_params info.mp_ranges;
      indented mctx (fun () ->
          emit_module_body mctx st ~params:info.mp_params nid);
      List.iter (fun _ -> line mctx "}") info.mp_params);
  modules.decls <- modules.decls @ [ Buffer.contents mctx.buf ];
  line ctx "%s(%s);" mname
    (String.concat ", " (used @ Sdfg.free_symbols g))

let emit_state ctx modules st =
  let parents = State.scope_parents st in
  let order = State.topological_order st in
  let top = List.filter (fun n -> Hashtbl.find parents n = None) order in
  let components = State.connected_components st in
  if List.length components > 1 then
    line ctx "#pragma HLS DATAFLOW  // concurrent components overlap";
  List.iter
    (fun nid ->
      match State.node st nid with
      | Map_entry info
        when info.mp_schedule = Fpga_device
             || info.mp_schedule = Fpga_unrolled ->
        emit_device_map ctx modules st nid info
      | Map_entry info ->
        List.iter2
          (fun p (r : Subset.range) ->
            line ctx "for (long long %s = %s; %s <= %s; %s += %s) {" p
              (e2c r.start) p (e2c r.stop) p (e2c r.stride))
          info.mp_params info.mp_ranges;
        indented ctx (fun () -> emit_module_body ctx st ~params:info.mp_params nid);
        List.iter (fun _ -> line ctx "}") info.mp_params
      | Access _ ->
        List.iter
          (fun (e : edge) ->
            match State.node st e.e_dst, e.e_memlet with
            | Access dst, Some m ->
              let src =
                match State.node st e.e_src with
                | Access d -> d
                | _ -> assert false
              in
              line ctx
                "memcpy_burst(%s, %s, %s * sizeof(%s));  // AXI burst" dst
                src
                (e2c (Subset.volume m.m_subset))
                (desc_ctype (Sdfg.desc ctx.g m.m_data))
            | _ -> ())
          (State.out_edges st nid)
      | Tasklet t -> emit_tasklet ctx st nid t ~params:[] ~atomic:`None
      | Reduce _ -> line ctx "// reduction tree module"
      | Consume_entry _ | Map_exit | Consume_exit -> ()
      | Nested_sdfg nest -> line ctx "// nested SDFG %s" nest.n_sdfg.g_name)
    top

let generate (g : Sdfg.t) : string =
  let ctx = make_ctx g in
  let modules = { decls = []; count = 0 } in
  let body_ctx = make_ctx g in
  block body_ctx
    (Fmt.str "extern \"C\" void sdfg_%s(%s)" (Sdfg.name g) (signature g))
    (fun () ->
      emit_transient_allocation body_ctx
        ~storage_filter:(fun _ -> true)
        ~alloc:(fun ctx name d ->
          if ddesc_is_stream d then begin
            line ctx "hls::stream<%s> %s(\"%s\");" (desc_ctype d) name name;
            line ctx "#pragma HLS STREAM variable=%s depth=%s" name
              (let buffer =
                 match d with Stream s -> s.s_buffer | Array _ -> Expr.zero
               in
               if Expr.equal buffer Expr.zero then "64" else e2c buffer)
          end
          else
            line ctx "%s %s[%s];  // %s" (desc_ctype d) name
              (e2c (total_size (ddesc_shape d)))
              (storage_name (ddesc_storage d)));
      emit_state_machine body_ctx ~emit_state:(fun ctx st ->
          emit_state ctx modules st));
  line ctx "// Generated by the SDFG compiler — FPGA (HLS C++) target";
  line ctx "#include <hls_stream.h>";
  line ctx "#include <cstring>";
  line ctx "#include \"sdfg_runtime.h\"";
  line ctx "";
  List.iter (fun m -> raw ctx m) modules.decls;
  line ctx "";
  raw ctx (Buffer.contents body_ctx.buf);
  Buffer.contents ctx.buf

(* A tiny report on synthesized resources, mirroring the place-and-route
   summary a performance engineer would inspect. *)
let resource_report (g : Sdfg.t) =
  let pes = ref 0 and fifos = ref 0 and brams = ref 0 in
  List.iter
    (fun st ->
      List.iter
        (fun (_, n) ->
          match n with
          | Map_entry m
            when m.mp_schedule = Fpga_device
                 || m.mp_schedule = Fpga_unrolled ->
            incr pes
          | _ -> ())
        (State.nodes st))
    (Sdfg.states g);
  List.iter
    (fun (_, d) ->
      if ddesc_is_stream d then incr fifos
      else if ddesc_storage d = Fpga_local then incr brams)
    (Sdfg.descs g);
  Fmt.str "modules=%d fifos=%d local_buffers=%d" !pes !fifos !brams
