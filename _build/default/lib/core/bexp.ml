(* Boolean conditions guarding inter-state transitions (paper §3.4).

   Conditions compare symbolic integer expressions; at runtime the symbol
   environment also exposes scalar container values, enabling
   data-dependent control flow (Fig. 10a). *)

module Expr = Symbolic.Expr
open Defs

type t = bexp

let true_ = Btrue
let false_ = Bfalse
let not_ b = Bnot b
let and_ a b = Band (a, b)
let or_ a b = Bor (a, b)
let cmp op a b = Bcmp (op, a, b)

let eq a b = Bcmp (Ceq, a, b)
let ne a b = Bcmp (Cne, a, b)
let lt a b = Bcmp (Clt, a, b)
let le a b = Bcmp (Cle, a, b)
let gt a b = Bcmp (Cgt, a, b)
let ge a b = Bcmp (Cge, a, b)

let eval_cmp op a b =
  match op with
  | Ceq -> a = b
  | Cne -> a <> b
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

let rec eval env (b : t) : bool =
  match b with
  | Btrue -> true
  | Bfalse -> false
  | Bnot b -> not (eval env b)
  | Band (x, y) -> eval env x && eval env y
  | Bor (x, y) -> eval env x || eval env y
  | Bcmp (op, a, b) -> eval_cmp op (Expr.eval env a) (Expr.eval env b)

let rec free_syms_acc acc = function
  | Btrue | Bfalse -> acc
  | Bnot b -> free_syms_acc acc b
  | Band (x, y) | Bor (x, y) -> free_syms_acc (free_syms_acc acc x) y
  | Bcmp (_, a, b) -> Expr.free_syms a @ Expr.free_syms b @ acc

let free_syms b = List.sort_uniq String.compare (free_syms_acc [] b)

let rec subst f = function
  | Btrue -> Btrue
  | Bfalse -> Bfalse
  | Bnot b -> Bnot (subst f b)
  | Band (x, y) -> Band (subst f x, subst f y)
  | Bor (x, y) -> Bor (subst f x, subst f y)
  | Bcmp (op, a, b) -> Bcmp (op, Expr.subst f a, Expr.subst f b)

let negate = not_

let cmp_name = function
  | Ceq -> "==" | Cne -> "!=" | Clt -> "<" | Cle -> "<=" | Cgt -> ">"
  | Cge -> ">="

let rec pp ppf = function
  | Btrue -> Fmt.string ppf "true"
  | Bfalse -> Fmt.string ppf "false"
  | Bnot b -> Fmt.pf ppf "!(%a)" pp b
  | Band (x, y) -> Fmt.pf ppf "(%a && %a)" pp x pp y
  | Bor (x, y) -> Fmt.pf ppf "(%a || %a)" pp x pp y
  | Bcmp (op, a, b) ->
    Fmt.pf ppf "%a %s %a" Expr.pp a (cmp_name op) Expr.pp b

let to_string b = Fmt.str "%a" pp b

(* C source for the generated state machine. *)
let rec to_c = function
  | Btrue -> "true"
  | Bfalse -> "false"
  | Bnot b -> Fmt.str "!(%s)" (to_c b)
  | Band (x, y) -> Fmt.str "(%s && %s)" (to_c x) (to_c y)
  | Bor (x, y) -> Fmt.str "(%s || %s)" (to_c x) (to_c y)
  | Bcmp (op, a, b) ->
    Fmt.str "(%s %s %s)" (Expr.to_string a) (cmp_name op) (Expr.to_string b)
