(* Memlet construction and queries (paper §2.1 Fig. 3, §3, Appendix A.1).

   A memlet annotates a dataflow edge with: the container it moves data
   of, the subset of elements visible at the source, an optional reindex
   subset at the destination, the number of elements moved (for the
   performance model), and an optional write-conflict resolution. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset

type t = Defs.memlet

(* [simple data subset] — the common case: volume inferred from the
   subset, no reindexing, no conflicts. *)
let simple ?other ?wcr ?(dynamic = false) ?accesses data subset : t =
  let accesses =
    match accesses with Some a -> a | None -> Subset.volume subset
  in
  { Defs.m_data = data;
    m_subset = subset;
    m_other = other;
    m_wcr = wcr;
    m_accesses = accesses;
    m_dynamic = dynamic }

(* Whole-container memlet for an array of the given shape. *)
let full data shape : t = simple data (Subset.of_shape shape)

(* Single-element memlet at symbolic indices. *)
let element ?wcr data indices : t =
  simple ?wcr data (Subset.of_indices indices)

(* Dynamic memlet (unknown access count), e.g. stream pushes in a consume
   scope — printed as "(dyn)" in the paper's figures. *)
let dyn ?wcr data subset : t =
  simple ?wcr ~dynamic:true ~accesses:Expr.zero data subset

let data (m : t) = m.Defs.m_data
let subset (m : t) = m.Defs.m_subset
let wcr (m : t) = m.Defs.m_wcr
let is_dynamic (m : t) = m.Defs.m_dynamic

(* Volume in elements; dynamic memlets report [None]. *)
let volume (m : t) =
  if m.Defs.m_dynamic then None else Some m.Defs.m_accesses

let volume_bytes ~dtype (m : t) =
  Option.map
    (fun v ->
      Expr.mul v (Expr.int (Tasklang.Types.dtype_size_bytes dtype)))
    (volume m)

let with_data data (m : t) = { m with Defs.m_data = data }
let with_subset subset (m : t) =
  { m with Defs.m_subset = subset; m_accesses = Subset.volume subset }
let with_wcr wcr (m : t) = { m with Defs.m_wcr = wcr }

let map_subsets f (m : t) =
  { m with
    Defs.m_subset = f m.Defs.m_subset;
    m_other = Option.map f m.Defs.m_other }

let subst_list bindings (m : t) =
  { (map_subsets (Subset.subst_list bindings) m) with
    Defs.m_accesses = Expr.subst_list bindings m.Defs.m_accesses }

let free_syms (m : t) =
  let s = Subset.free_syms m.Defs.m_subset in
  let s' =
    match m.Defs.m_other with
    | None -> []
    | Some o -> Subset.free_syms o
  in
  List.sort_uniq String.compare (s @ s' @ Expr.free_syms m.Defs.m_accesses)

let equal (a : t) (b : t) =
  String.equal a.Defs.m_data b.Defs.m_data
  && Subset.equal a.Defs.m_subset b.Defs.m_subset
  && (match a.Defs.m_other, b.Defs.m_other with
     | None, None -> true
     | Some x, Some y -> Subset.equal x y
     | _ -> false)
  && (match a.Defs.m_wcr, b.Defs.m_wcr with
     | None, None -> true
     | Some x, Some y -> Wcr.equal x y
     | _ -> false)
  && Bool.equal a.Defs.m_dynamic b.Defs.m_dynamic

let pp ppf (m : t) =
  Fmt.pf ppf "%s%a" m.Defs.m_data Subset.pp m.Defs.m_subset;
  (match m.Defs.m_wcr with
  | Some w -> Fmt.pf ppf " (CR: %a)" Wcr.pp w
  | None -> ());
  if m.Defs.m_dynamic then Fmt.pf ppf " (dyn)"

let to_string m = Fmt.str "%a" pp m
