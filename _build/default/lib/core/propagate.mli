(** Memlet propagation — the data-dependency inference of §4.3 step ❶:
    memlet ranges are propagated from tasklets and containers outwards
    through scopes, using the image of the scope function (the map range)
    on the union of the internal memlet subsets.

    Propagated outer memlets are what make exact accelerator copies
    possible, and what the performance model charges for data movement. *)

val scope_params :
  Defs.state -> int -> (string * Symbolic.Subset.range) list
(** Parameters and ranges of a scope entry node. *)

val scope_executions : Defs.state -> int -> Symbolic.Expr.t
(** Number of executions of the scope body (product of range extents). *)

val propagate_memlet :
  params:(string * Symbolic.Subset.range) list ->
  executions:Symbolic.Expr.t ->
  Defs.memlet ->
  Defs.memlet
(** Image of one memlet over the scope parameters; the access count is
    multiplied by the execution count. *)

val propagate_state : Defs.state -> unit
(** Propagate all scopes of a state, innermost first. *)

val propagate : Defs.sdfg -> unit
(** Propagate every state of [g] and of its nested SDFGs. *)

val state_movement_volume : Defs.state -> Symbolic.Expr.t
(** Total data movement of a state's top-level edges, in elements. *)
