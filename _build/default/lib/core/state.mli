(** Operations on SDFG states — the acyclic dataflow multigraphs whose
    nodes are containers, computation and scopes, and whose edges carry
    memlets (paper §3 and Appendix A.1).

    States are mutable: transformations are "find and replace" operations
    that edit them in place (§4.1).  Node and edge identifiers are dense
    integers that are never reused. *)

type t = Defs.state

val create : ?label:string -> int -> t
val id : t -> int
val label : t -> string
val set_label : t -> string -> unit

(** {1 Nodes and edges} *)

val add_node : t -> Defs.node -> int
(** Insert a node, returning its fresh identifier. *)

val node : t -> int -> Defs.node
(** @raise Defs.Invalid_sdfg on an unknown identifier. *)

val has_node : t -> int -> bool

val replace_node : t -> int -> Defs.node -> unit
(** Swap a node's payload in place, keeping its identity and edges. *)

val add_edge :
  t ->
  ?src_conn:string ->
  ?dst_conn:string ->
  ?memlet:Defs.memlet ->
  src:int ->
  dst:int ->
  unit ->
  Defs.edge
(** Connect two nodes.  Scope nodes use the [IN_<name>]/[OUT_<name>]
    connector convention; an edge without a memlet is a pure ordering
    dependency. *)

val edge : t -> int -> Defs.edge
val remove_edge : t -> int -> unit

val remove_node : t -> int -> unit
(** Also removes all incident edges and any scope registration. *)

val nodes : t -> (int * Defs.node) list
(** All nodes, sorted by identifier. *)

val node_ids : t -> int list
val edges : t -> Defs.edge list
val num_nodes : t -> int
val num_edges : t -> int
val in_edges : t -> int -> Defs.edge list
val out_edges : t -> int -> Defs.edge list
val in_degree : t -> int -> int
val out_degree : t -> int -> int
val predecessors : t -> int -> int list
val successors : t -> int -> int list

(** {1 Scopes (Map/Consume pairing, §3.3)} *)

val set_scope : t -> entry:int -> exit_:int -> unit
(** Register the exit node paired with a scope entry. *)

val exit_of : t -> int -> int
val entry_of : t -> int -> int
val is_scope_entry : t -> int -> bool
val is_scope_exit : t -> int -> bool

val scope_parents : t -> (int, int option) Hashtbl.t
(** For every node, its innermost enclosing scope-entry node ([None] at
    the state's top level).  Well-formed scopes are dominated by their
    entry and post-dominated by their exit, so a single forward pass in
    topological order computes this.
    @raise Defs.Invalid_sdfg if the dataflow graph is cyclic. *)

val topological_order : t -> int list
(** Deterministic (lowest-id-first) topological order.
    @raise Defs.Invalid_sdfg if the graph has a cycle. *)

val scope_nodes : t -> int -> int list
(** All nodes strictly inside the scope of an entry node — the subgraph
    replicated by map expansion (Fig. 6). *)

(** {1 Memlet paths} *)

val memlet_path : t -> Defs.edge -> Defs.edge list
(** The full chain of edges a memlet traverses through scope connectors
    ([IN_x] continues from [OUT_x]), from outermost producer to innermost
    consumer. *)

(** {1 Queries} *)

val access_nodes : t -> (int * string) list
val access_nodes_of : t -> string -> (int * string) list
val tasklets : t -> (int * Defs.tasklet) list
val map_entries : t -> (int * Defs.map_info) list

val used_containers : t -> string list
(** Containers read or written anywhere in this state. *)

val connected_components : t -> int list list
(** Weakly-connected components; distinct components execute concurrently
    (§3.3) and are mapped to OpenMP sections / CUDA streams / FPGA
    command queues by the code generators. *)

(** {1 Cloning} *)

val clone_node : Defs.node -> Defs.node
(** Deep copy (nested SDFGs are copied recursively). *)

val clone : t -> ?id:int -> unit -> t
val clone_sdfg : Defs.sdfg -> Defs.sdfg

val node_label : t -> int -> string
(** Human-readable node label, as used by the Graphviz export. *)
