(* Tiny string-replacement helper (identifier-boundary aware) used by code
   generation; avoids a dependency on the [re] package for this one need. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

(* Replace every whole-identifier occurrence of [sub] in [s] by [by]. *)
let replace_all s ~sub ~by =
  let n = String.length s and m = String.length sub in
  if m = 0 then s
  else begin
    let buf = Buffer.create (n + 16) in
    let i = ref 0 in
    while !i < n do
      if
        !i + m <= n
        && String.sub s !i m = sub
        && (!i = 0 || not (is_ident_char s.[!i - 1]))
        && (!i + m >= n || not (is_ident_char s.[!i + m]))
      then begin
        Buffer.add_string buf by;
        i := !i + m
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end
