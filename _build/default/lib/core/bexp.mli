(** Boolean conditions guarding inter-state transitions (paper §3.4).

    Conditions compare symbolic integer expressions; at runtime the
    symbol environment also exposes scalar containers, enabling
    data-dependent control flow (Fig. 10a). *)

type t = Defs.bexp

val true_ : t
val false_ : t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val cmp : Defs.cmpop -> Symbolic.Expr.t -> Symbolic.Expr.t -> t

val eq : Symbolic.Expr.t -> Symbolic.Expr.t -> t
val ne : Symbolic.Expr.t -> Symbolic.Expr.t -> t
val lt : Symbolic.Expr.t -> Symbolic.Expr.t -> t
val le : Symbolic.Expr.t -> Symbolic.Expr.t -> t
val gt : Symbolic.Expr.t -> Symbolic.Expr.t -> t
val ge : Symbolic.Expr.t -> Symbolic.Expr.t -> t

val eval : (string -> int option) -> t -> bool
(** @raise Symbolic.Expr.Unbound_symbol on unresolvable symbols. *)

val free_syms : t -> string list
val subst : (string -> Symbolic.Expr.t option) -> t -> t
val negate : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_c : t -> string
(** C source for the generated state machine. *)
