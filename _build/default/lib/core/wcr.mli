(** Write-conflict resolution functions (paper Table 1 and §3.3): a
    combiner [S x S -> S] applied when memlets may write concurrently to
    the same location.  Targets lower it to atomics, critical sections or
    accumulator modules; here it has a mathematical definition (for the
    interpreter) and an identity element (for Reduce initialization and
    privatization). *)

type t = Defs.wcr

val sum : t
val prod : t
val min_ : t
val max_ : t

val custom : Tasklang.Ast.expr -> t
(** Custom combiner over the free variables ["old"] and ["new"]. *)

val of_code : string -> t
(** Parse a combiner from source, e.g. ["old + new"]. *)

val apply : t -> old_v:Tasklang.Types.value -> new_v:Tasklang.Types.value ->
  Tasklang.Types.value

val identity : t -> Tasklang.Types.dtype -> Tasklang.Types.value option
(** Identity element, when one is known ([None] for custom combiners). *)

val is_commutative : t -> bool
val name : t -> string

val to_c : t -> old_e:string -> new_e:string -> string
(** C expression combining two operand expressions (code generation). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
