(* Write-conflict resolution functions (paper Table 1 and §3.3).

   A WCR is a function [S × S → S] receiving the old value present at the
   destination and the incoming new value.  Depending on the target it is
   lowered to atomics, critical sections or accumulator modules; here we
   provide its mathematical definition (for the interpreter) and its
   identity element (for Reduce initialization and privatization). *)

open Tasklang.Types

type t = Defs.wcr

let sum : t = Defs.Wcr_sum
let prod : t = Defs.Wcr_prod
let min_ : t = Defs.Wcr_min
let max_ : t = Defs.Wcr_max
let custom e : t = Defs.Wcr_custom e

(* Parse a custom combiner from source text over variables "old"/"new",
   e.g. "old + new" or "max(old, new)". *)
let of_code src : t = Defs.Wcr_custom (Tasklang.Parse.expression src)

let apply (w : t) ~old_v ~new_v =
  match w with
  | Defs.Wcr_sum -> (
    match old_v, new_v with
    | I a, I b -> I (a + b)
    | a, b -> F (to_float a +. to_float b))
  | Defs.Wcr_prod -> (
    match old_v, new_v with
    | I a, I b -> I (a * b)
    | a, b -> F (to_float a *. to_float b))
  | Defs.Wcr_min -> (
    match old_v, new_v with
    | I a, I b -> I (min a b)
    | a, b -> F (Float.min (to_float a) (to_float b)))
  | Defs.Wcr_max -> (
    match old_v, new_v with
    | I a, I b -> I (max a b)
    | a, b -> F (Float.max (to_float a) (to_float b)))
  | Defs.Wcr_custom e ->
    Tasklang.Eval.eval_expression
      ~scalars:[ ("old", old_v); ("new", new_v) ]
      e

(* Identity element for a dtype, used to initialize reductions. *)
let identity (w : t) (dt : dtype) : value option =
  match w with
  | Defs.Wcr_sum -> Some (if is_float dt then F 0. else I 0)
  | Defs.Wcr_prod -> Some (if is_float dt then F 1. else I 1)
  | Defs.Wcr_min ->
    Some (if is_float dt then F Float.infinity else I max_int)
  | Defs.Wcr_max ->
    Some (if is_float dt then F Float.neg_infinity else I min_int)
  | Defs.Wcr_custom _ -> None

let is_commutative = function
  | Defs.Wcr_sum | Defs.Wcr_prod | Defs.Wcr_min | Defs.Wcr_max -> true
  | Defs.Wcr_custom _ -> false (* unknown; treated conservatively *)

let name = function
  | Defs.Wcr_sum -> "Sum"
  | Defs.Wcr_prod -> "Prod"
  | Defs.Wcr_min -> "Min"
  | Defs.Wcr_max -> "Max"
  | Defs.Wcr_custom _ -> "Custom"

(* C expression combining [old_e] and [new_e] — used by code generation
   when lowering WCR to a read-modify-write or an atomic. *)
let to_c (w : t) ~old_e ~new_e =
  match w with
  | Defs.Wcr_sum -> Fmt.str "(%s + %s)" old_e new_e
  | Defs.Wcr_prod -> Fmt.str "(%s * %s)" old_e new_e
  | Defs.Wcr_min -> Fmt.str "std::min(%s, %s)" old_e new_e
  | Defs.Wcr_max -> Fmt.str "std::max(%s, %s)" old_e new_e
  | Defs.Wcr_custom e ->
    let body = Tasklang.Emit.expr_to_c e in
    let body = Str_replace.replace_all body ~sub:"old" ~by:old_e in
    Str_replace.replace_all body ~sub:"new" ~by:new_e

let pp ppf w = Fmt.string ppf (name w)

let equal (a : t) (b : t) =
  match a, b with
  | Defs.Wcr_sum, Defs.Wcr_sum
  | Defs.Wcr_prod, Defs.Wcr_prod
  | Defs.Wcr_min, Defs.Wcr_min
  | Defs.Wcr_max, Defs.Wcr_max -> true
  | Defs.Wcr_custom x, Defs.Wcr_custom y -> x = y
  | _ -> false
