(* Graphviz export of SDFGs, mirroring the visual language of the paper's
   figures: ellipses for access nodes, octagons for tasklets, trapezoids
   for map entry/exit, dashed edges for write-conflict-resolution memlets,
   and one cluster per state with inter-state transition edges between
   clusters. *)

open Defs

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_attrs st nid =
  let lbl = escape (State.node_label st nid) in
  match State.node st nid with
  | Access _ -> Fmt.str "label=\"%s\", shape=ellipse" lbl
  | Tasklet _ -> Fmt.str "label=\"%s\", shape=octagon" lbl
  | Map_entry _ -> Fmt.str "label=\"%s\", shape=trapezium" lbl
  | Map_exit -> "label=\"\", shape=invtrapezium"
  | Consume_entry _ -> Fmt.str "label=\"%s\", shape=trapezium, style=dotted" lbl
  | Consume_exit -> "label=\"\", shape=invtrapezium, style=dotted"
  | Reduce _ -> Fmt.str "label=\"%s\", shape=invtriangle" lbl
  | Nested_sdfg _ -> Fmt.str "label=\"%s\", shape=doubleoctagon" lbl

let edge_attrs (e : edge) =
  match e.e_memlet with
  | None -> "style=dotted, label=\"\""
  | Some m ->
    let style = if m.m_wcr <> None then ", style=dashed" else "" in
    Fmt.str "label=\"%s\"%s" (escape (Memlet.to_string m)) style

let state_body buf prefix st =
  List.iter
    (fun (nid, _) ->
      Buffer.add_string buf
        (Fmt.str "    %s_n%d [%s];\n" prefix nid (node_attrs st nid)))
    (State.nodes st);
  List.iter
    (fun (e : edge) ->
      Buffer.add_string buf
        (Fmt.str "    %s_n%d -> %s_n%d [%s];\n" prefix e.e_src prefix e.e_dst
           (edge_attrs e)))
    (State.edges st)

let of_state (st : state) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Fmt.str "digraph %S {\n" st.st_label);
  state_body buf "s" st;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_sdfg (g : sdfg) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Fmt.str "digraph %S {\n  compound=true;\n" g.g_name);
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Fmt.str "  subgraph cluster_s%d {\n    label=\"%s\";\n" st.st_id
           (escape st.st_label));
      state_body buf (Fmt.str "s%d" st.st_id) st;
      (* Anchor node for inter-state edges on empty states. *)
      if State.num_nodes st = 0 then
        Buffer.add_string buf
          (Fmt.str "    s%d_anchor [label=\"\", shape=point];\n" st.st_id);
      Buffer.add_string buf "  }\n")
    (Sdfg.states g);
  let anchor st =
    match State.nodes st with
    | (nid, _) :: _ -> Fmt.str "s%d_n%d" st.st_id nid
    | [] -> Fmt.str "s%d_anchor" st.st_id
  in
  List.iter
    (fun (e : istate_edge) ->
      let src = Sdfg.state g e.is_src and dst = Sdfg.state g e.is_dst in
      let lbl =
        let cond =
          match e.is_cond with Btrue -> "" | c -> Bexp.to_string c
        in
        let asn =
          String.concat "; "
            (List.map
               (fun (s, ex) ->
                 Fmt.str "%s=%s" s (Symbolic.Expr.to_string ex))
               e.is_assign)
        in
        match cond, asn with
        | "", "" -> ""
        | c, "" -> c
        | "", a -> a
        | c, a -> c ^ "; " ^ a
      in
      Buffer.add_string buf
        (Fmt.str
           "  %s -> %s [ltail=cluster_s%d, lhead=cluster_s%d, label=\"%s\", \
            color=blue];\n"
           (anchor src) (anchor dst) e.is_src e.is_dst (escape lbl)))
    (Sdfg.transitions g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let save_sdfg g path = write_file path (of_sdfg g)
