(** Graphviz export, mirroring the visual language of the paper's figures:
    ellipses for access nodes, octagons for tasklets, trapezoids for map
    entry/exit, dashed edges for write-conflict-resolution memlets, and
    one cluster per state with blue inter-state transition edges. *)

val of_state : Defs.state -> string
(** A single state as a standalone digraph. *)

val of_sdfg : Defs.sdfg -> string
(** The whole SDFG: state clusters plus the transition state machine. *)

val write_file : string -> string -> unit
val save_sdfg : Defs.sdfg -> string -> unit
