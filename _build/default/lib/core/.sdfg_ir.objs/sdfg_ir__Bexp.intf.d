lib/core/bexp.mli: Defs Format Symbolic
