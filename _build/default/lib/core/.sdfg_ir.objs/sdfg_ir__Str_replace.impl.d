lib/core/str_replace.ml: Buffer String
