lib/core/propagate.ml: Defs Hashtbl Int List Sdfg State String Symbolic
