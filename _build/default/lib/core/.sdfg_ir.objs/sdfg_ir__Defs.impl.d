lib/core/defs.ml: Fmt Hashtbl List Symbolic Tasklang
