lib/core/state.ml: Defs Fmt Hashtbl Int List Option Queue Set String Symbolic Wcr
