lib/core/bexp.ml: Defs Fmt List String Symbolic
