lib/core/validate.mli: Defs
