lib/core/wcr.mli: Defs Format Tasklang
