lib/core/sdfg.mli: Defs Format Symbolic
