lib/core/memlet.ml: Bool Defs Fmt List Option String Symbolic Tasklang Wcr
