lib/core/wcr.ml: Defs Float Fmt Str_replace Tasklang
