lib/core/dot.ml: Bexp Buffer Defs Fmt Fun List Memlet Sdfg State String Symbolic
