lib/core/state.mli: Defs Hashtbl
