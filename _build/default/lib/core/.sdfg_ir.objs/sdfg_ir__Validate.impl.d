lib/core/validate.ml: Defs Hashtbl List Memlet Sdfg State String Symbolic Tasklang
