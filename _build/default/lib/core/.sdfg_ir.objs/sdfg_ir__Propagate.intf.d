lib/core/propagate.mli: Defs Symbolic
