lib/core/dot.mli: Defs
