lib/core/serialize.ml: Buffer Defs Fmt Fun Hashtbl List Sdfg State String Symbolic Tasklang
