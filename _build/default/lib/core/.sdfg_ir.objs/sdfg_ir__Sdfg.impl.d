lib/core/sdfg.ml: Bexp Defs Fmt Hashtbl Int List Memlet Option State String Symbolic Tasklang
