lib/core/serialize.mli: Defs Symbolic
