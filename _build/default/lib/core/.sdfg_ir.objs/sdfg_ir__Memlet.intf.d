lib/core/memlet.mli: Defs Format Symbolic
