(** Memlet construction and queries (paper §2.1 Fig. 3, §3, Appendix A.1).

    A memlet annotates a dataflow edge with the container it moves data
    of, the subset visible at the source, an optional reindex subset at
    the destination, the number of elements moved (used for performance
    modeling), an optional write-conflict resolution, and a dynamic flag
    for data-dependent access counts. *)

type t = Defs.memlet

val simple :
  ?other:Symbolic.Subset.t ->
  ?wcr:Defs.wcr ->
  ?dynamic:bool ->
  ?accesses:Symbolic.Expr.t ->
  string ->
  Symbolic.Subset.t ->
  t
(** [simple data subset] — access count defaults to the subset volume. *)

val full : string -> Symbolic.Expr.t list -> t
(** Whole-container memlet for an array of the given shape. *)

val element : ?wcr:Defs.wcr -> string -> Symbolic.Expr.t list -> t
(** Single element at symbolic indices. *)

val dyn : ?wcr:Defs.wcr -> string -> Symbolic.Subset.t -> t
(** Dynamic (unknown access count) — rendered "(dyn)" as in Fig. 8. *)

val data : t -> string
val subset : t -> Symbolic.Subset.t
val wcr : t -> Defs.wcr option
val is_dynamic : t -> bool

val volume : t -> Symbolic.Expr.t option
(** Elements moved; [None] for dynamic memlets. *)

val volume_bytes : dtype:Defs.dtype -> t -> Symbolic.Expr.t option

val with_data : string -> t -> t
val with_subset : Symbolic.Subset.t -> t -> t
val with_wcr : Defs.wcr option -> t -> t
val map_subsets : (Symbolic.Subset.t -> Symbolic.Subset.t) -> t -> t
val subst_list : (string * Symbolic.Expr.t) list -> t -> t
val free_syms : t -> string list
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints the paper's notation, e.g. [A[0:N] (CR: Sum)]. *)

val to_string : t -> string
