(** SDFG validation — step ❶ of the compilation pipeline (paper §4.3):
    scopes correctly structured, memlets connected with matching
    dimensionality, tasklets touching only their connectors, and map
    schedules / storage locations feasible (e.g. a GPU thread-block map
    must be nested inside a GPU device map). *)

val check : Defs.sdfg -> unit
(** Validate recursively (including nested SDFGs).
    @raise Defs.Invalid_sdfg with a descriptive message on the first
    violation. *)

val check_state : Defs.sdfg -> Defs.state -> unit

val is_valid : Defs.sdfg -> bool
(** Boolean convenience wrapper around {!check}. *)
