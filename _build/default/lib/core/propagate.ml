(* Memlet propagation — the data-dependency inference of §4.3 step ❶:
   "memlet ranges are propagated from tasklets and containers outwards
   (through scopes) to obtain the overall data dependencies of each scope,
   using the image of the scope function (e.g., Map range) on the union of
   the internal memlet subsets".

   The propagated outer memlets are what makes exact accelerator copies
   possible, and what the performance model charges for data movement. *)

module Expr = Symbolic.Expr
module Subset = Symbolic.Subset
open Defs

(* Scope parameters of an entry node, as (param, range) pairs. *)
let scope_params (st : state) entry =
  match State.node st entry with
  | Map_entry m -> List.combine m.mp_params m.mp_ranges
  | Consume_entry c ->
    [ (c.cs_pe_param,
       Subset.range Expr.zero (Expr.sub c.cs_num_pes Expr.one)) ]
  | _ -> invalid "propagate: node %d is not a scope entry" entry

(* Number of executions of the scope body = product of range extents. *)
let scope_executions (st : state) entry =
  scope_params st entry
  |> List.map (fun (_, r) -> Subset.num_elements r)
  |> Expr.product

(* Propagate one memlet out of a scope: image of the subset over all scope
   parameters; access count multiplied by the number of executions. *)
let propagate_memlet ~params ~executions (m : memlet) : memlet =
  let subset = Subset.propagate_params params m.m_subset in
  let accesses =
    if m.m_dynamic then Expr.zero else Expr.mul executions m.m_accesses
  in
  { m with m_subset = subset; m_other = None; m_accesses = accesses }

(* Group edges adjacent to a scope node by connector base name. *)
let base_of prefix conn =
  match conn with
  | Some c
    when String.length c > String.length prefix
         && String.sub c 0 (String.length prefix) = prefix ->
    Some
      (String.sub c (String.length prefix)
         (String.length c - String.length prefix))
  | _ -> None

(* Innermost-first list of scope entries. *)
let entries_by_depth (st : state) =
  let parents = State.scope_parents st in
  let rec depth nid =
    match Hashtbl.find_opt parents nid with
    | Some (Some p) -> 1 + depth p
    | _ -> 0
  in
  State.nodes st
  |> List.filter_map (fun (nid, n) ->
         match n with
         | Map_entry _ | Consume_entry _ -> Some (nid, depth nid)
         | _ -> None)
  |> List.sort (fun (_, d1) (_, d2) -> Int.compare d2 d1)
  |> List.map fst

let propagate_scope (st : state) entry =
  let exit_ = State.exit_of st entry in
  let params = scope_params st entry in
  let executions = scope_executions st entry in
  let update_outer ~inner_edges ~outer_edge =
    let inner_memlets =
      List.filter_map (fun (e : edge) -> e.e_memlet) inner_edges
    in
    match inner_memlets with
    | [] -> ()
    | m0 :: rest ->
      let dynamic = List.exists (fun m -> m.m_dynamic) inner_memlets in
      let subset =
        List.fold_left (fun acc m -> Subset.union acc m.m_subset)
          m0.m_subset rest
      in
      let accesses =
        List.fold_left (fun acc m -> Expr.add acc m.m_accesses) Expr.zero
          inner_memlets
      in
      let combined =
        { m0 with m_subset = subset; m_accesses = accesses;
          m_dynamic = dynamic }
      in
      let prop = propagate_memlet ~params ~executions combined in
      (* Keep WCR from the inner memlets on outgoing propagation. *)
      let wcr =
        List.fold_left
          (fun acc m -> match acc with Some _ -> acc | None -> m.m_wcr)
          None inner_memlets
      in
      outer_edge.e_memlet <- Some { prop with m_wcr = wcr }
  in
  (* Entry: inner edges leave from OUT_<x>; outer edge arrives at IN_<x>. *)
  let entry_outer = State.in_edges st entry in
  List.iter
    (fun (outer : edge) ->
      match base_of "IN_" outer.e_dst_conn with
      | None -> ()
      | Some base ->
        let inner =
          List.filter
            (fun (e : edge) -> base_of "OUT_" e.e_src_conn = Some base)
            (State.out_edges st entry)
        in
        update_outer ~inner_edges:inner ~outer_edge:outer)
    entry_outer;
  (* Exit: inner edges arrive at IN_<x>; outer edge leaves from OUT_<x>. *)
  let exit_outer = State.out_edges st exit_ in
  List.iter
    (fun (outer : edge) ->
      match base_of "OUT_" outer.e_src_conn with
      | None -> ()
      | Some base ->
        let inner =
          List.filter
            (fun (e : edge) -> base_of "IN_" e.e_dst_conn = Some base)
            (State.in_edges st exit_)
        in
        update_outer ~inner_edges:inner ~outer_edge:outer)
    exit_outer

let propagate_state (st : state) =
  List.iter (propagate_scope st) (entries_by_depth st)

(* Propagate all memlets in all states (and nested SDFGs) of [g]. *)
let rec propagate (g : sdfg) =
  List.iter
    (fun st ->
      List.iter
        (fun (_, n) ->
          match n with
          | Nested_sdfg nest -> propagate nest.n_sdfg
          | _ -> ())
        (State.nodes st);
      propagate_state st)
    (Sdfg.states g)

(* Total data movement volume of a state in elements: the sum of memlet
   volumes of top-level edges (scope-internal edges are already accounted
   for by propagation).  Dynamic memlets contribute zero here and are
   reported separately. *)
let state_movement_volume (st : state) : Expr.t =
  let parents = State.scope_parents st in
  State.edges st
  |> List.filter (fun (e : edge) ->
         Hashtbl.find parents e.e_src = None
         || Hashtbl.find parents e.e_dst = None)
  |> List.filter_map (fun (e : edge) -> e.e_memlet)
  |> List.map (fun m -> if m.m_dynamic then Expr.zero else m.m_accesses)
  |> Expr.sum
