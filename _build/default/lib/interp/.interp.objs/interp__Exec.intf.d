lib/interp/exec.mli: Format Queue Sdfg_ir Tasklang Tensor
