lib/interp/tensor.ml: Array Float Fmt List String Symbolic Tasklang
