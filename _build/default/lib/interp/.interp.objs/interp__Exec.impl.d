lib/interp/exec.ml: Array Bexp Defs Fmt Fun Hashtbl List Option Queue Sdfg Sdfg_ir State String Symbolic Tasklang Tensor Wcr
