lib/interp/tensor.mli: Format Symbolic Tasklang
