(** Reference interpreter for SDFGs — an executable rendition of the
    operational semantics of Appendix A.

    Execution follows the state machine: run the current state's dataflow
    to quiescence in topological order, evaluate outgoing transitions,
    apply assignments, repeat until no condition holds.  Map scopes
    expand their symbolic ranges (Fig. 6b); consume scopes process
    streams dynamically until quiescence (Fig. 8); WCR memlets combine
    values with their resolution function; nested SDFGs run on aliased
    views of the outer memory.

    The interpreter is the semantic oracle of the test suite: every
    transformation and device offload is checked to preserve its
    results. *)

exception Runtime_error of string

type stream_rt = {
  qs : Tasklang.Types.value Queue.t array;
  q_shape : int array;
  q_dtype : Tasklang.Types.dtype;
}

type container = Tens of Tensor.t | Strm of stream_rt

(** Instrumentation counters gathered during a run. *)
type stats = {
  mutable elements_moved : int;   (** memlet-bound element transfers *)
  mutable tasklet_execs : int;
  mutable map_iterations : int;
  mutable stream_pushes : int;
  mutable stream_pops : int;
  mutable states_executed : int;
  mutable wcr_writes : int;       (** write-conflict resolutions applied *)
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

val register_external :
  string -> ((string * Tasklang.Eval.binding) list -> unit) -> unit
(** Provide the native implementation for an [External] tasklet (paper
    Fig. 5), keyed by tasklet name.  The bindings give the connector
    accessors; the implementation must not touch anything else. *)

val run :
  ?max_states:int ->
  ?symbols:(string * int) list ->
  ?args:(string * Tensor.t) list ->
  Sdfg_ir.Sdfg.t ->
  stats
(** Execute an SDFG.  [symbols] binds the free symbols (sizes);
    [args] binds non-transient containers to caller-owned tensors,
    which are mutated in place (the array-based interface of §2.1).
    Containers not supplied are allocated zero-initialized.
    [max_states] bounds state-machine steps (default 1,000,000).
    @raise Runtime_error on stuck or ill-formed programs. *)
