lib/machine/spec.ml:
