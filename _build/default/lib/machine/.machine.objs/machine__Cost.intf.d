lib/machine/cost.mli: Format Sdfg_ir Spec
