lib/machine/cost.ml: Array Bexp Defs Float Fmt Hashtbl List Option Sdfg Sdfg_ir Spec State String Symbolic Tasklang
