(* Machine descriptions for the performance model.

   These stand in for the paper's testbed (§6, Experimental Setup): a
   12-core Xeon E5-2650 v4, a Tesla P100, and a Xilinx XCVU9P (VCU1525
   board).  Numbers are public datasheet values; the simulator charges
   time against them from the data movement the memlets describe. *)

type cpu = {
  c_name : string;
  c_cores : int;
  c_freq_ghz : float;
  c_fma_per_cycle : float;       (* scalar f64 FMA issue rate per core *)
  c_vector_width_f64 : int;      (* AVX2: 4 doubles *)
  c_dram_gbs : float;            (* sustained stream bandwidth *)
  c_l2_bytes : float;            (* per-core private cache *)
  c_l3_bytes : float;            (* shared LLC *)
  c_atomic_ns : float;           (* contended atomic RMW *)
  c_fork_us : float;             (* OpenMP parallel-region entry *)
  c_random_bw_frac : float;      (* fraction of bw under irregular access *)
}

type gpu = {
  g_name : string;
  g_sms : int;
  g_fp64_tflops : float;
  g_fp32_tflops : float;
  g_hbm_gbs : float;
  g_pcie_gbs : float;
  g_launch_us : float;           (* kernel launch latency *)
  g_atomic_ns : float;           (* global atomic amortized *)
  g_threads_per_sm : int;
  g_random_bw_frac : float;
}

type fpga = {
  f_name : string;
  f_freq_mhz : float;
  f_dsp : int;                   (* DSP slices (f64 FMA ~ 8 DSPs) *)
  f_bram_bytes : float;
  f_ddr_gbs : float;
  f_pcie_gbs : float;
  f_naive_ii : float;            (* initiation interval of unoptimized HLS *)
  f_route_freq_penalty : float;  (* fraction of fmax after place & route *)
}

(* Intel Xeon E5-2650 v4: 12 cores at 2.2 GHz, AVX2 (4-wide f64 FMA),
   ~60 GB/s over 4 DDR4-2400 channels, 30 MB L3. *)
let xeon_e5_2650_v4 =
  { c_name = "Xeon E5-2650 v4";
    c_cores = 12;
    c_freq_ghz = 2.2;
    c_fma_per_cycle = 2.0;
    c_vector_width_f64 = 4;
    c_dram_gbs = 60.0;
    c_l2_bytes = 262144.0;
    c_l3_bytes = 31457280.0;
    c_atomic_ns = 10.0;
    c_fork_us = 3.0;
    c_random_bw_frac = 0.12 }

(* NVIDIA Tesla P100 (16 GB HBM2). *)
let p100 =
  { g_name = "Tesla P100";
    g_sms = 56;
    g_fp64_tflops = 4.7;
    g_fp32_tflops = 9.3;
    g_hbm_gbs = 732.0;
    g_pcie_gbs = 12.0;
    g_launch_us = 5.0;
    g_atomic_ns = 2.0;
    g_threads_per_sm = 2048;
    g_random_bw_frac = 0.15 }

(* NVIDIA Tesla V100, for the Table 3 comparison. *)
let v100 =
  { g_name = "Tesla V100";
    g_sms = 80;
    g_fp64_tflops = 7.8;
    g_fp32_tflops = 15.7;
    g_hbm_gbs = 900.0;
    g_pcie_gbs = 12.0;
    g_launch_us = 4.0;
    g_atomic_ns = 1.5;
    g_threads_per_sm = 2048;
    g_random_bw_frac = 0.18 }

(* Xilinx XCVU9P on a VCU1525: 6,840 DSPs, ~43 MB on-chip RAM, 4 DDR4
   banks at 2400 MT/s (~76.8 GB/s aggregate). *)
let xcvu9p =
  { f_name = "Xilinx XCVU9P (VCU1525)";
    f_freq_mhz = 300.0;
    f_dsp = 6840;
    f_bram_bytes = 43.0e6;
    f_ddr_gbs = 76.8;
    f_pcie_gbs = 12.0;
    f_naive_ii = 8.0;
    f_route_freq_penalty = 0.75 }

type t = { cpu : cpu; gpu : gpu; fpga : fpga }

let paper_testbed = { cpu = xeon_e5_2650_v4; gpu = p100; fpga = xcvu9p }

let cpu_peak_flops c =
  (* FMA counts as two flops *)
  float_of_int c.c_cores *. c.c_freq_ghz *. 1e9 *. c.c_fma_per_cycle *. 2.0
  *. float_of_int c.c_vector_width_f64

let cpu_core_scalar_flops c = c.c_freq_ghz *. 1e9 *. c.c_fma_per_cycle *. 2.0
