(* Models of the comparison systems of §5 and §6.

   Every baseline evaluates the *same* workload SDFG through the machine
   model ({!Machine.Cost}) under options that encode how that compiler or
   framework treats the program:

   - general-purpose compilers (GCC/Clang/ICC) run the loop nests
     sequentially (no auto-parallelization in the Polybench setup) with a
     partial auto-vectorization factor;
   - polyhedral compilers (Polly/Pluto) additionally tile for cache
     (compulsory-traffic model) and, for Pluto's --parallel flags,
     parallelize the outer loops;
   - PPCG generates GPU code but conservatively copies arrays around every
     kernel (the paper attributes its losses to "unnecessary array
     copies");
   - naive HLS synthesizes an unpipelined sequential circuit;
   - vendor libraries (MKL/CUBLAS/CUSPARSE/CUB) are closed-form
     near-roofline models for the specific operation;
   - graph frameworks (Galois/Gluon) and Halide/HPX get per-workload
     effectiveness factors documented with the experiment that uses them.

   Baselines that error out in the paper's evaluation (Fig. 13's
   "Compiler Error" bars) are recorded in [failures]. *)

module Cost = Machine.Cost
module Spec = Machine.Spec

type t = {
  b_name : string;
  b_target : Cost.target;
  b_opts : Cost.options;
  b_factor : float;  (* residual code-quality multiplier (>1 = slower) *)
}

let base = Cost.default_options

let make ?(factor = 1.0) name target opts =
  { b_name = name; b_target = target; b_opts = opts; b_factor = factor }

(* --- CPU compilers ------------------------------------------------------------- *)

let gcc =
  make "GCC" Cost.Tcpu
    { base with force_sequential = true; vector_override = Some 2.0 }

let clang =
  make "Clang" Cost.Tcpu ~factor:1.05
    { base with force_sequential = true; vector_override = Some 1.8 }

let icc =
  make "ICC" Cost.Tcpu ~factor:0.95
    { base with force_sequential = true; vector_override = Some 3.0 }

let polly =
  make "Polly" Cost.Tcpu
    { base with
      force_sequential = true;
      vector_override = Some 2.5;
      assume_cache_optimal = true }

let pluto =
  make "Pluto" Cost.Tcpu
    { base with
      parallel_efficiency = 0.8;
      vector_override = Some 2.5;
      assume_cache_optimal = true }

(* The unoptimized SDFG itself (§5): inherent map parallelism, no
   transformations, scalar code. *)
let sdfg_cpu = make "SDFG" Cost.Tcpu base

(* --- GPU ------------------------------------------------------------------------ *)

let ppcg =
  (* polyhedral GPU code with redundant copies around kernels *)
  make "PPCG" Cost.Tgpu ~factor:1.15 { base with copy_factor = 4.0 }

let sdfg_gpu = make "SDFG" Cost.Tgpu base
let nvcc = make "NVCC" Cost.Tgpu ~factor:1.3 { base with copy_factor = 1.5 }

(* --- FPGA ------------------------------------------------------------------------ *)

let naive_hls = make "HLS" Cost.Tfpga { base with naive_fpga = true }
let sdfg_fpga = make "SDFG" Cost.Tfpga base

(* --- evaluation -------------------------------------------------------------------- *)

let evaluate ?(spec = Spec.paper_testbed) (b : t) ~symbols ?(hints = [])
    ?(visit_hints = []) g =
  let opts =
    { b.b_opts with
      Cost.hints = hints @ b.b_opts.Cost.hints;
      visit_hints = visit_hints @ b.b_opts.Cost.visit_hints }
  in
  let r = Cost.estimate ~opts ~spec ~target:b.b_target ~symbols g in
  { r with Cost.r_time_s = r.Cost.r_time_s *. b.b_factor }

(* Fig. 13 "Compiler Error" bars. *)
let failures =
  [ ("Pluto", "gramschmidt"); ("PPCG", "durbin") ]

let fails (b : t) kernel = List.mem (b.b_name, kernel) failures

(* --- closed-form vendor-library models ------------------------------------------ *)

(* MKL dgemm: ~93% of CPU peak for large sizes (Goto-style kernels). *)
let mkl_gemm ?(spec = Spec.paper_testbed) ~m ~n ~k () =
  let flops = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k in
  let peak = Spec.cpu_peak_flops spec.Spec.cpu in
  let bytes = 8.0 *. float_of_int ((m * k) + (k * n) + (2 * m * n)) in
  Float.max (flops /. (0.93 *. peak))
    (bytes /. (spec.Spec.cpu.Spec.c_dram_gbs *. 1e9))

(* MKL sparse dcsrmv: bandwidth-bound on values + irregular x gathers
   (the gathers go at the same random-access bandwidth everyone gets). *)
let mkl_spmv ?(spec = Spec.paper_testbed) ~nnz ~rows () =
  let c = spec.Spec.cpu in
  let stream_bytes = float_of_int ((nnz * 16) + (rows * 16)) in
  let rand_bytes = float_of_int (nnz * 8) in
  (stream_bytes /. (c.Spec.c_dram_gbs *. 1e9))
  +. (rand_bytes /. (c.Spec.c_dram_gbs *. 1e9 *. c.Spec.c_random_bw_frac))

(* CUBLAS dgemm on the GPU: ~90% of fp64 peak, plus the same PCIe
   transfers the measured SDFG pays (§6: runtimes include memory copy). *)
let cublas_gemm ?(spec = Spec.paper_testbed) ~m ~n ~k () =
  let flops = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k in
  let copy_bytes = float_of_int (((m * k) + (k * n) + (2 * m * n)) * 8) in
  flops /. (0.90 *. spec.Spec.gpu.Spec.g_fp64_tflops *. 1e12)
  +. (copy_bytes /. (spec.Spec.gpu.Spec.g_pcie_gbs *. 1e9))
  +. (spec.Spec.gpu.Spec.g_launch_us *. 1e-6)

(* CUTLASS: ~97% of CUBLAS for this size class. *)
let cutlass_gemm ?spec ~m ~n ~k () = cublas_gemm ?spec ~m ~n ~k () /. 0.97

(* CUBLAS batched-strided GEMM on tiny matrices (Table 3): launch-bound
   and padded — the paper reports 86.6% of peak with only 6.1% useful. *)
let cublas_batched_strided ?(spec = Spec.paper_testbed) ~batches ~nb () =
  let useful = 2.0 *. float_of_int batches *. float_of_int (nb * nb * nb) in
  (* tiny operands are padded to full 32x32x32 warp tiles, wasting
     (32/nb)^3 of the executed flops *)
  let padded = useful *. ((32. /. float_of_int nb) ** 3.) in
  padded /. (0.87 *. spec.Spec.gpu.Spec.g_fp64_tflops *. 1e12)

(* cuSPARSE csrmv, including PCIe transfer of the CSR structure. *)
let cusparse_spmv ?(spec = Spec.paper_testbed) ~nnz ~rows () =
  let gpu = spec.Spec.gpu in
  let stream_bytes = float_of_int ((nnz * 16) + (rows * 16)) in
  let rand_bytes = float_of_int (nnz * 8) in
  (stream_bytes /. (gpu.Spec.g_hbm_gbs *. 1e9))
  +. (rand_bytes /. (gpu.Spec.g_hbm_gbs *. 1e9 *. 2.5 *. gpu.Spec.g_random_bw_frac))
  +. (stream_bytes /. (gpu.Spec.g_pcie_gbs *. 1e9))
  +. (gpu.Spec.g_launch_us *. 1e-6)

(* CUB device primitives (histogram / select): bandwidth-bound with small
   fixed overhead, plus PCIe transfer of the input. *)
let cub_pass ?(spec = Spec.paper_testbed) ~bytes () =
  (bytes /. (0.85 *. spec.Spec.gpu.Spec.g_hbm_gbs *. 1e9))
  +. (bytes /. (spec.Spec.gpu.Spec.g_pcie_gbs *. 1e9))
  +. (2. *. spec.Spec.gpu.Spec.g_launch_us *. 1e-6)

(* Graph frameworks (Fig. 17): time per BFS as a function of edges visited
   and levels.  Galois's coarse work chunks win on low-diameter social
   graphs; the fine-grained SDFG map scheduling wins on high-diameter road
   maps (paper: "up to 2x faster than Galois" on road maps). *)
let graph_framework ?(spec = Spec.paper_testbed) ~name ~edges ~vertices
    ~levels () =
  let c = spec.Spec.cpu in
  let cores = float_of_int c.Spec.c_cores in
  let per_edge_ns, per_level_us =
    match name with
    | "Galois" -> (1.9, 15.0)
    | "Gluon" -> (2.4, 25.0)
    | _ -> (2.0, 20.0)
  in
  let edge_time =
    float_of_int edges *. per_edge_ns *. 1e-9 /. (cores *. 0.7)
  in
  let vertex_time = float_of_int vertices *. 1.0e-9 /. cores in
  edge_time +. vertex_time +. (float_of_int levels *. per_level_us *. 1e-6)

(* HPX / STL parallel algorithms for Query: task overheads dominate. *)
let hpx_query ?(spec = Spec.paper_testbed) ~n () =
  let c = spec.Spec.cpu in
  (float_of_int n *. 8.0 /. (c.Spec.c_dram_gbs *. 1e9 *. 0.5)) +. 2e-3

(* Halide (manually scheduled + autotuned): competitive on stencils. *)
let halide_factor = 0.85  (* vs tuned SDFG on Jacobi (paper: 20% faster) *)
