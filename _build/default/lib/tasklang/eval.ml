(* Evaluator for tasklet code.

   The evaluator is deliberately decoupled from any tensor representation:
   the host (the SDFG interpreter) supplies per-connector accessors, so a
   tasklet can only ever touch what its memlets moved in or out — the
   no-external-memory rule of paper §3.2 enforced by construction. *)

open Types

type binding =
  | Scalar of value
  | Buffer of (int list -> value) * (int list -> value -> unit)
    (* (get, set) pair over local (memlet-relative) indices *)

type env = {
  bindings : (string * binding) list;
  locals : (string, value) Hashtbl.t;
}

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let float_op op a b = F (op (to_float a) (to_float b))
let bool_of v = to_bool v

let arith fop iop a b =
  match a, b with
  | I x, I y -> I (iop x y)
  | _ -> float_op fop a b

let apply_binop op a b =
  match op with
  | Ast.Add -> arith ( +. ) ( + ) a b
  | Ast.Sub -> arith ( -. ) ( - ) a b
  | Ast.Mul -> arith ( *. ) ( * ) a b
  | Ast.Div -> (
    match a, b with
    | I x, I y ->
      if y = 0 then eval_error "integer division by zero"
      else
        I
          (let q = x / y and r = x mod y in
           if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q)
    | _ -> float_op ( /. ) a b)
  | Ast.Mod -> (
    match a, b with
    | I x, I y ->
      if y = 0 then eval_error "integer modulo by zero"
      else
        I
          (let r = x mod y in
           if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
    | _ -> float_op Float.rem a b)
  | Ast.Pow -> (
    match a, b with
    | I x, I y when y >= 0 ->
      let rec go acc b e = if e = 0 then acc else go (acc * b) b (e - 1) in
      I (go 1 x y)
    | _ -> float_op ( ** ) a b)
  | Ast.Min -> arith Float.min min a b
  | Ast.Max -> arith Float.max max a b
  | Ast.Lt -> B (to_float a < to_float b)
  | Ast.Le -> B (to_float a <= to_float b)
  | Ast.Gt -> B (to_float a > to_float b)
  | Ast.Ge -> B (to_float a >= to_float b)
  | Ast.Eq -> B (value_equal a b)
  | Ast.Ne -> B (not (value_equal a b))
  | Ast.And -> B (bool_of a && bool_of b)
  | Ast.Or -> B (bool_of a || bool_of b)

let apply_unop op a =
  match op with
  | Ast.Neg -> ( match a with I n -> I (-n) | _ -> F (-.to_float a))
  | Ast.Not -> B (not (bool_of a))
  | Ast.Sqrt -> F (sqrt (to_float a))
  | Ast.Exp -> F (exp (to_float a))
  | Ast.Log -> F (log (to_float a))
  | Ast.Abs -> ( match a with I n -> I (abs n) | _ -> F (Float.abs (to_float a)))
  | Ast.Sin -> F (sin (to_float a))
  | Ast.Cos -> F (cos (to_float a))
  | Ast.Floor -> I (int_of_float (floor (to_float a)))

let rec eval_expr env (e : Ast.expr) : value =
  match e with
  | Ast.Float_lit x -> F x
  | Ast.Int_lit n -> I n
  | Ast.Bool_lit b -> B b
  | Ast.Var x -> (
    match Hashtbl.find_opt env.locals x with
    | Some v -> v
    | None -> (
      match List.assoc_opt x env.bindings with
      | Some (Scalar v) -> v
      | Some (Buffer (get, _)) -> get []
      | None -> eval_error "unbound name %S" x))
  | Ast.Index (x, idxs) -> (
    let is = List.map (fun i -> to_int (eval_expr env i)) idxs in
    match List.assoc_opt x env.bindings with
    | Some (Buffer (get, _)) -> get is
    | Some (Scalar v) ->
      if List.for_all (fun i -> i = 0) is then v
      else eval_error "indexing scalar connector %S at nonzero index" x
    | None -> eval_error "indexing unbound connector %S" x)
  | Ast.Unop (op, a) -> apply_unop op (eval_expr env a)
  | Ast.Binop (op, a, b) -> apply_binop op (eval_expr env a) (eval_expr env b)
  | Ast.Cond (c, t, f) ->
    if bool_of (eval_expr env c) then eval_expr env t else eval_expr env f

let rec exec_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Assign (lhs, e) -> (
    let v = eval_expr env e in
    match lhs with
    | Ast.Lvar x -> (
      match List.assoc_opt x env.bindings with
      | Some (Buffer (_, set)) -> set [] v
      | Some (Scalar _) ->
        eval_error "writing to input-only connector %S" x
      | None -> Hashtbl.replace env.locals x v)
    | Ast.Lindex (x, idxs) -> (
      let is = List.map (fun i -> to_int (eval_expr env i)) idxs in
      match List.assoc_opt x env.bindings with
      | Some (Buffer (_, set)) -> set is v
      | Some (Scalar _) | None ->
        eval_error "writing to unbound or scalar connector %S" x))
  | Ast.If (c, t, f) ->
    if bool_of (eval_expr env c) then List.iter (exec_stmt env) t
    else List.iter (exec_stmt env) f
  | Ast.For (v, lo, hi, body) ->
    let lo = to_int (eval_expr env lo) and hi = to_int (eval_expr env hi) in
    for i = lo to hi - 1 do
      Hashtbl.replace env.locals v (I i);
      List.iter (exec_stmt env) body
    done

(* Run a tasklet body under connector bindings. *)
let run ~bindings (code : Ast.t) : unit =
  let env = { bindings; locals = Hashtbl.create 8 } in
  List.iter (exec_stmt env) code

(* Convenience for tests: evaluate one expression under scalar bindings. *)
let eval_expression ~scalars (e : Ast.expr) : value =
  let bindings = List.map (fun (n, v) -> (n, Scalar v)) scalars in
  eval_expr { bindings; locals = Hashtbl.create 4 } e
