(* Type and shape inference for tasklet code.

   This mirrors the role of DaCe's Python-to-C++ converter front half
   (paper §3.2: "performs type and shape inference, tracks local variables
   for definitions").  Connectors arrive typed (name, dtype, rank); local
   variables take the type of their first assignment. *)

open Types

type conn = { c_name : string; c_dtype : dtype; c_rank : int }

type env = {
  conns : (string, conn) Hashtbl.t;
  locals : (string, dtype) Hashtbl.t;
}

let make_env conns =
  let tbl = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace tbl c.c_name c) conns;
  { conns = tbl; locals = Hashtbl.create 8 }

let lookup env name =
  match Hashtbl.find_opt env.locals name with
  | Some dt -> Some (dt, 0)
  | None -> (
    match Hashtbl.find_opt env.conns name with
    | Some c -> Some (c.c_dtype, c.c_rank)
    | None -> None)

let rec infer_expr env (e : Ast.expr) : dtype =
  match e with
  | Ast.Float_lit _ -> F64
  | Ast.Int_lit _ -> I64
  | Ast.Bool_lit _ -> Bool
  | Ast.Var x -> (
    match lookup env x with
    | Some (dt, _) -> dt
    | None -> type_error "unbound variable %S in tasklet" x)
  | Ast.Index (x, idxs) -> (
    match Hashtbl.find_opt env.conns x with
    | None -> type_error "indexing unknown connector %S" x
    | Some c ->
      if c.c_rank <> 0 && List.length idxs <> c.c_rank then
        type_error "connector %S has rank %d but %d indices were given" x
          c.c_rank (List.length idxs);
      List.iter
        (fun i ->
          let t = infer_expr env i in
          if not (is_int t) then
            type_error "non-integer index into %S (type %s)" x (dtype_name t))
        idxs;
      c.c_dtype)
  | Ast.Unop (op, a) -> (
    let ta = infer_expr env a in
    match op with
    | Ast.Not ->
      if ta <> Bool && not (is_int ta) then
        type_error "'not' applied to %s" (dtype_name ta);
      Bool
    | Ast.Neg -> ta
    | Ast.Abs -> ta
    | Ast.Floor -> I64  (* floor truncates to integer, enabling indexing *)
    | Ast.Sqrt | Ast.Exp | Ast.Log | Ast.Sin | Ast.Cos -> F64)
  | Ast.Binop (op, a, b) -> (
    let ta = infer_expr env a and tb = infer_expr env b in
    match op with
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Bool
    | Ast.And | Ast.Or -> Bool
    | Ast.Pow -> if is_int ta && is_int tb then promote ta tb else F64
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Min | Ast.Max ->
      promote ta tb)
  | Ast.Cond (c, t, f) ->
    let tc = infer_expr env c in
    if tc <> Bool && not (is_int tc) then
      type_error "conditional guard has type %s" (dtype_name tc);
    promote (infer_expr env t) (infer_expr env f)

let rec check_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Assign (lhs, e) -> (
    let te = infer_expr env e in
    match lhs with
    | Ast.Lvar x -> (
      match Hashtbl.find_opt env.conns x with
      | Some _ -> () (* write to a connector: value is coerced on store *)
      | None -> (
        match Hashtbl.find_opt env.locals x with
        | Some t0 -> Hashtbl.replace env.locals x (promote t0 te)
        | None -> Hashtbl.replace env.locals x te))
    | Ast.Lindex (x, idxs) ->
      ignore (infer_expr env (Ast.Index (x, idxs))))
  | Ast.If (c, t, f) ->
    let tc = infer_expr env c in
    if tc <> Bool && not (is_int tc) then
      type_error "'if' guard has type %s" (dtype_name tc);
    List.iter (check_stmt env) t;
    List.iter (check_stmt env) f
  | Ast.For (v, lo, hi, body) ->
    if not (is_int (infer_expr env lo)) then
      type_error "loop bound of %S is not an integer" v;
    if not (is_int (infer_expr env hi)) then
      type_error "loop bound of %S is not an integer" v;
    Hashtbl.replace env.locals v I64;
    List.iter (check_stmt env) body

(* Typecheck a tasklet body; returns the inferred local-variable types.
   @raise Types.Type_error on ill-typed code. *)
let check ~connectors (code : Ast.t) : (string * dtype) list =
  let env = make_env connectors in
  List.iter (check_stmt env) code;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.locals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
