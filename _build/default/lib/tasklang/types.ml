(* Base types and runtime values of the tasklet mini-language.

   DaCe tasklets are strongly typed (paper §2.1); connectors carry one of
   these base types.  Only scalar base types exist — multi-dimensional
   structure lives in the connectors' shapes, not in the type system. *)

type dtype = F32 | F64 | I32 | I64 | Bool

type value = F of float | I of int | B of bool

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let dtype_name = function
  | F32 -> "float32"
  | F64 -> "float64"
  | I32 -> "int32"
  | I64 -> "int64"
  | Bool -> "bool"

let dtype_ctype = function
  | F32 -> "float"
  | F64 -> "double"
  | I32 -> "int"
  | I64 -> "long long"
  | Bool -> "bool"

let dtype_size_bytes = function
  | F32 -> 4
  | F64 -> 8
  | I32 -> 4
  | I64 -> 8
  | Bool -> 1

let is_float = function F32 | F64 -> true | I32 | I64 | Bool -> false
let is_int = function I32 | I64 -> true | F32 | F64 | Bool -> false

let value_dtype = function F _ -> F64 | I _ -> I64 | B _ -> Bool

let zero_of = function
  | F32 | F64 -> F 0.
  | I32 | I64 -> I 0
  | Bool -> B false

let to_float = function
  | F x -> x
  | I n -> float_of_int n
  | B b -> if b then 1. else 0.

let to_int = function
  | I n -> n
  | F x -> int_of_float x
  | B b -> if b then 1 else 0

let to_bool = function
  | B b -> b
  | I n -> n <> 0
  | F x -> x <> 0.

(* Coerce a value to the representation class of a dtype.  Tasklet
   arithmetic is performed at f64/i64 precision; storage narrows on
   write, matching the generated C++ semantics of the original system. *)
let coerce dt v =
  match dt with
  | F32 | F64 -> F (to_float v)
  | I32 | I64 -> I (to_int v)
  | Bool -> B (to_bool v)

let value_equal a b =
  match a, b with
  | F x, F y -> Float.equal x y
  | I x, I y -> Int.equal x y
  | B x, B y -> Bool.equal x y
  | _ -> Float.equal (to_float a) (to_float b)

let pp_value ppf = function
  | F x -> Fmt.float ppf x
  | I n -> Fmt.int ppf n
  | B b -> Fmt.bool ppf b

let pp_dtype ppf dt = Fmt.string ppf (dtype_name dt)

(* Numeric promotion: float wins over int, wider wins over narrower. *)
let promote a b =
  match a, b with
  | F64, _ | _, F64 -> F64
  | F32, _ | _, F32 -> F32
  | I64, _ | _, I64 -> I64
  | I32, _ | _, I32 -> I32
  | Bool, Bool -> Bool
