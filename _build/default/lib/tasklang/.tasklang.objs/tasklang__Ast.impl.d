lib/tasklang/ast.ml: Float Fmt List String
