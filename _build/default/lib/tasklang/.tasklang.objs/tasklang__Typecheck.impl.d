lib/tasklang/typecheck.ml: Ast Hashtbl List String Types
