lib/tasklang/parse.ml: Ast Fmt List String
