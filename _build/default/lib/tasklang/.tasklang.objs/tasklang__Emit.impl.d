lib/tasklang/emit.ml: Ast Buffer Float Fmt Hashtbl List String Typecheck Types
