lib/tasklang/types.ml: Bool Float Fmt Int
