lib/tasklang/eval.ml: Ast Float Fmt Hashtbl List Types
