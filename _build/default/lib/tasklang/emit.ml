(* C-like code emission for tasklets — the back half of DaCe's
   Python-to-C++ converter (paper §3.2).  Produces the statement text that
   the SDFG code generator splices into the generated kernel for each
   target (the surrounding prologue/epilogue is the code generator's
   job, Appendix A.2.2 "If q is a tasklet"). *)

open Types

let unop_c = function
  | Ast.Neg -> "-"
  | Ast.Not -> "!"
  | Ast.Sqrt -> "sqrt"
  | Ast.Exp -> "exp"
  | Ast.Log -> "log"
  | Ast.Abs -> "fabs"
  | Ast.Sin -> "sin"
  | Ast.Cos -> "cos"
  | Ast.Floor -> "floor"

let binop_c = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"
  | Ast.Pow | Ast.Min | Ast.Max -> assert false (* emitted as calls *)

let rec expr_c buf (e : Ast.expr) =
  match e with
  | Ast.Float_lit x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string buf (Fmt.str "%.1f" x)
    else Buffer.add_string buf (Fmt.str "%.17g" x)
  | Ast.Int_lit n -> Buffer.add_string buf (string_of_int n)
  | Ast.Bool_lit b -> Buffer.add_string buf (if b then "true" else "false")
  | Ast.Var x -> Buffer.add_string buf x
  | Ast.Index (x, idxs) ->
    Buffer.add_string buf x;
    List.iter
      (fun i ->
        Buffer.add_char buf '[';
        expr_c buf i;
        Buffer.add_char buf ']')
      idxs
  | Ast.Unop (op, a) -> (
    match op with
    | Ast.Neg | Ast.Not ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (unop_c op);
      expr_c buf a;
      Buffer.add_char buf ')'
    | _ ->
      Buffer.add_string buf (unop_c op);
      Buffer.add_char buf '(';
      expr_c buf a;
      Buffer.add_char buf ')')
  | Ast.Binop (Ast.Pow, a, b) ->
    Buffer.add_string buf "pow(";
    expr_c buf a;
    Buffer.add_string buf ", ";
    expr_c buf b;
    Buffer.add_char buf ')'
  | Ast.Binop (Ast.Min, a, b) ->
    Buffer.add_string buf "std::min(";
    expr_c buf a;
    Buffer.add_string buf ", ";
    expr_c buf b;
    Buffer.add_char buf ')'
  | Ast.Binop (Ast.Max, a, b) ->
    Buffer.add_string buf "std::max(";
    expr_c buf a;
    Buffer.add_string buf ", ";
    expr_c buf b;
    Buffer.add_char buf ')'
  | Ast.Binop (op, a, b) ->
    Buffer.add_char buf '(';
    expr_c buf a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_c op);
    Buffer.add_char buf ' ';
    expr_c buf b;
    Buffer.add_char buf ')'
  | Ast.Cond (c, t, f) ->
    Buffer.add_char buf '(';
    expr_c buf c;
    Buffer.add_string buf " ? ";
    expr_c buf t;
    Buffer.add_string buf " : ";
    expr_c buf f;
    Buffer.add_char buf ')'

let rec stmt_c buf ~indent ~declared locals (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Assign (lhs, e) ->
    Buffer.add_string buf pad;
    (match lhs with
    | Ast.Lvar x when (not (Hashtbl.mem declared x)) && List.mem_assoc x locals
      ->
      Hashtbl.replace declared x ();
      Buffer.add_string buf (dtype_ctype (List.assoc x locals));
      Buffer.add_char buf ' ';
      Buffer.add_string buf x
    | Ast.Lvar x -> Buffer.add_string buf x
    | Ast.Lindex (x, idxs) ->
      Buffer.add_string buf x;
      List.iter
        (fun i ->
          Buffer.add_char buf '[';
          expr_c buf i;
          Buffer.add_char buf ']')
        idxs);
    Buffer.add_string buf " = ";
    expr_c buf e;
    Buffer.add_string buf ";\n"
  | Ast.If (c, t, f) ->
    Buffer.add_string buf pad;
    Buffer.add_string buf "if (";
    expr_c buf c;
    Buffer.add_string buf ") {\n";
    List.iter (stmt_c buf ~indent:(indent + 2) ~declared locals) t;
    Buffer.add_string buf pad;
    Buffer.add_string buf "}";
    if f <> [] then begin
      Buffer.add_string buf " else {\n";
      List.iter (stmt_c buf ~indent:(indent + 2) ~declared locals) f;
      Buffer.add_string buf pad;
      Buffer.add_string buf "}"
    end;
    Buffer.add_char buf '\n'
  | Ast.For (v, lo, hi, body) ->
    Buffer.add_string buf pad;
    Buffer.add_string buf (Fmt.str "for (long long %s = " v);
    expr_c buf lo;
    Buffer.add_string buf (Fmt.str "; %s < " v);
    expr_c buf hi;
    Buffer.add_string buf (Fmt.str "; ++%s) {\n" v);
    Hashtbl.replace declared v ();
    List.iter (stmt_c buf ~indent:(indent + 2) ~declared locals) body;
    Buffer.add_string buf pad;
    Buffer.add_string buf "}\n"

(* Emit the body of a tasklet as C statements.  [connectors] provides
   types for inference; locals are declared at first assignment. *)
let to_c ?(indent = 0) ~connectors (code : Ast.t) : string =
  let locals = Typecheck.check ~connectors code in
  let buf = Buffer.create 256 in
  let declared = Hashtbl.create 8 in
  List.iter (stmt_c buf ~indent ~declared locals) code;
  Buffer.contents buf

let expr_to_c (e : Ast.expr) : string =
  let buf = Buffer.create 64 in
  expr_c buf e;
  Buffer.contents buf
