lib/symbolic/subset.mli: Expr Format
