lib/symbolic/expr.mli: Format
