lib/symbolic/subset.ml: Expr Fmt List String
