lib/symbolic/expr.ml: Fmt Hashtbl Int List String
