(* Symbolic rectangular subsets — the mathematical object carried by every
   memlet (paper §3, Table 1 and Appendix A: "lists of exclusive ranges,
   where each range refers to one data dimension and is defined by
   start:end:stride:tilesize").  Ends are inclusive, following DaCe. *)

type range = {
  start : Expr.t;
  stop : Expr.t;  (* inclusive *)
  stride : Expr.t;
  tile : Expr.t;
}

type t = range list

let range ?(stride = Expr.one) ?(tile = Expr.one) start stop =
  { start; stop; stride; tile }

let index e = range e e

let of_indices es = List.map index es

(* Full range [0 .. size-1] of a dimension. *)
let full size = range Expr.zero (Expr.sub size Expr.one)

let of_shape shape = List.map full shape

let dims (s : t) = List.length s

let num_elements r =
  (* floor((stop - start) / stride) + 1, times the tile size *)
  Expr.mul
    (Expr.add (Expr.div (Expr.sub r.stop r.start) r.stride) Expr.one)
    r.tile

let volume (s : t) = Expr.product (List.map num_elements s)

let is_unit_range r =
  Expr.equal r.start r.stop && Expr.as_int r.tile = Some 1

let is_index (s : t) = List.for_all is_unit_range s

let free_syms (s : t) =
  List.concat_map
    (fun r ->
      List.concat_map Expr.free_syms [ r.start; r.stop; r.stride; r.tile ])
    s
  |> List.sort_uniq String.compare

let map_exprs f (s : t) =
  List.map
    (fun r ->
      { start = f r.start; stop = f r.stop; stride = f r.stride;
        tile = f r.tile })
    s

let subst env s = map_exprs (Expr.subst env) s
let subst1 name value s = map_exprs (Expr.subst1 name value) s
let subst_list bindings s = map_exprs (Expr.subst_list bindings) s

let equal_range a b =
  Expr.equal a.start b.start && Expr.equal a.stop b.stop
  && Expr.equal a.stride b.stride && Expr.equal a.tile b.tile

let equal (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 equal_range a b

(* --- set operations -------------------------------------------------- *)

(* Bounding-box union: per-dimension min of starts and max of stops.
   Strides collapse to 1 when they disagree (sound over-approximation,
   exactly as DaCe's Range.union). *)
let union_range a b =
  let stride =
    if Expr.equal a.stride b.stride then a.stride else Expr.one
  in
  { start = Expr.min_ a.start b.start;
    stop = Expr.max_ a.stop b.stop;
    stride;
    tile = Expr.max_ a.tile b.tile }

let union (a : t) (b : t) =
  if List.length a <> List.length b then
    invalid_arg "Subset.union: dimensionality mismatch";
  List.map2 union_range a b

let union_all = function
  | [] -> invalid_arg "Subset.union_all: empty"
  | s :: rest -> List.fold_left union s rest

(* Best-effort symbolic covering check: [covers a b] is true only when we
   can prove every point of [b] lies inside [a].  Unknown => false. *)
let proves_le a b =
  match Expr.as_int (Expr.sub b a) with Some d -> d >= 0 | None -> Expr.equal a b

let covers_range a b = proves_le a.start b.start && proves_le b.stop a.stop

let covers (a : t) (b : t) =
  List.length a = List.length b && List.for_all2 covers_range a b

(* Intersection test on constant subsets; [None] when symbolic. *)
let intersects_range a b =
  match
    Expr.as_int a.start, Expr.as_int a.stop, Expr.as_int b.start,
    Expr.as_int b.stop
  with
  | Some as_, Some ae, Some bs, Some be -> Some (as_ <= be && bs <= ae)
  | _ -> None

let intersects (a : t) (b : t) =
  if List.length a <> List.length b then Some false
  else
    List.fold_left2
      (fun acc ra rb ->
        match acc, intersects_range ra rb with
        | Some false, _ -> Some false
        | _, Some false -> Some false
        | Some true, Some true -> Some true
        | _ -> None)
      (Some true) a b

(* --- composition ----------------------------------------------------- *)

(* [compose outer inner]: [inner] is expressed relative to the origin of
   [outer]; the result is [inner] placed in the coordinate system of
   [outer]'s container.  Used when squeezing memlets through nested-SDFG
   boundaries and by the LocalStorage transformation (Fig 11b, where
   relative indices are "r_in - r_out"). *)
let compose_range outer inner =
  { start = Expr.add outer.start (Expr.mul inner.start outer.stride);
    stop = Expr.add outer.start (Expr.mul inner.stop outer.stride);
    stride = Expr.mul outer.stride inner.stride;
    tile = inner.tile }

let compose (outer : t) (inner : t) =
  if List.length outer <> List.length inner then
    invalid_arg "Subset.compose: dimensionality mismatch";
  List.map2 compose_range outer inner

(* [offset_by s ~origin] rebases [s] so that [origin]'s start is 0 — the
   inverse direction of [compose] for stride-1 origins. *)
let offset_range r ~origin =
  { r with
    start = Expr.sub r.start origin.start;
    stop = Expr.sub r.stop origin.start }

let offset_by (s : t) ~(origin : t) =
  if List.length s <> List.length origin then
    invalid_arg "Subset.offset_by: dimensionality mismatch";
  List.map2 (fun r o -> offset_range r ~origin:o) s origin

(* --- image over a parameter (memlet propagation) --------------------- *)

(* The image of [s] as a map parameter [param] sweeps [prange]
   (paper §4.3 ❶: "memlet ranges are propagated ... using the image of the
   scope function on the union of the internal memlet subsets").  Interval
   arithmetic bounds each endpoint; strides are kept only when the
   expression does not involve the parameter. *)
let propagate_param ~param ~(prange : range) (s : t) =
  let env name =
    if String.equal name param then
      Some { Expr.lo = prange.start; hi = prange.stop }
    else None
  in
  List.map
    (fun r ->
      let uses_param e = List.mem param (Expr.free_syms e) in
      if
        not
          (uses_param r.start || uses_param r.stop || uses_param r.stride)
      then r
      else
        let blo = (Expr.bounds env r.start).Expr.lo in
        let bhi = (Expr.bounds env r.stop).Expr.hi in
        { start = blo; stop = bhi; stride = Expr.one; tile = r.tile })
    s

let propagate_params params (s : t) =
  List.fold_left
    (fun acc (param, prange) -> propagate_param ~param ~prange acc)
    s params

(* --- concretization --------------------------------------------------- *)

type concrete_range = { c_start : int; c_stop : int; c_stride : int }

let eval_range env r =
  if Expr.as_int r.tile <> Some 1 then
    { c_start = Expr.eval env r.start;
      c_stop =
        Expr.eval env
          (Expr.add r.stop (Expr.sub r.tile Expr.one));
      c_stride = 1 }
  else
    { c_start = Expr.eval env r.start;
      c_stop = Expr.eval env r.stop;
      c_stride = max 1 (Expr.eval env r.stride) }

let eval env (s : t) = List.map (eval_range env) s

let eval_list bindings s = eval (fun n -> List.assoc_opt n bindings) s

let concrete_size c =
  List.fold_left
    (fun acc r -> acc * (((r.c_stop - r.c_start) / r.c_stride) + 1))
    1 c

(* Enumerate all points of a concrete subset in row-major order. *)
let concrete_points (c : concrete_range list) =
  let rec go = function
    | [] -> [ [] ]
    | r :: rest ->
      let tails = go rest in
      let rec idxs i acc =
        if i > r.c_stop then List.rev acc else idxs (i + r.c_stride) (i :: acc)
      in
      let heads = idxs r.c_start [] in
      List.concat_map (fun h -> List.map (fun t -> h :: t) tails) heads
  in
  go c

(* --- printing --------------------------------------------------------- *)

let pp_range ppf r =
  if is_unit_range r then Expr.pp ppf r.start
  else begin
    Fmt.pf ppf "%a:%a" Expr.pp r.start Expr.pp (Expr.add r.stop Expr.one);
    (match Expr.as_int r.stride with
    | Some 1 -> ()
    | _ -> Fmt.pf ppf ":%a" Expr.pp r.stride);
    match Expr.as_int r.tile with
    | Some 1 -> ()
    | _ -> Fmt.pf ppf "::%a" Expr.pp r.tile
  end

let pp ppf (s : t) =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") pp_range) s

let to_string s = Fmt.str "%a" pp s
