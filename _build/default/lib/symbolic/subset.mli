(** Symbolic rectangular subsets — the object carried by every memlet.

    A subset is a list of per-dimension ranges
    [start:stop:stride:tile] with {e inclusive} ends, exactly as in the
    paper (Table 1 and Appendix A).  All endpoints are symbolic
    {!Expr.t} values, which is what makes memlets parametric. *)

type range = {
  start : Expr.t;
  stop : Expr.t;  (** inclusive *)
  stride : Expr.t;
  tile : Expr.t;
}

type t = range list

val range : ?stride:Expr.t -> ?tile:Expr.t -> Expr.t -> Expr.t -> range
(** [range start stop] with optional stride/tile (default 1). *)

val index : Expr.t -> range
(** Single-element range [e:e]. *)

val of_indices : Expr.t list -> t
val full : Expr.t -> range
(** [full size] is the complete dimension [0 : size-1]. *)

val of_shape : Expr.t list -> t
(** Whole-array subset for an array of the given shape. *)

val dims : t -> int

val num_elements : range -> Expr.t
val volume : t -> Expr.t
(** Number of elements moved — the quantity used for performance modelling
    ("the number of data elements moved", paper §2.1). *)

val is_unit_range : range -> bool
val is_index : t -> bool

val free_syms : t -> string list
val map_exprs : (Expr.t -> Expr.t) -> t -> t
val subst : (string -> Expr.t option) -> t -> t
val subst1 : string -> Expr.t -> t -> t
val subst_list : (string * Expr.t) list -> t -> t

val equal_range : range -> range -> bool
val equal : t -> t -> bool

val union : t -> t -> t
(** Bounding-box union (sound over-approximation). *)

val union_all : t list -> t

val covers : t -> t -> bool
(** [covers a b] is [true] only when [a] provably contains [b]; an unknown
    symbolic relation yields [false]. *)

val intersects : t -> t -> bool option
(** Constant-case intersection test; [None] when symbolic. *)

val compose : t -> t -> t
(** [compose outer inner] places [inner] (relative to [outer]'s origin)
    into [outer]'s container coordinates. *)

val offset_by : t -> origin:t -> t
(** Rebase a subset relative to [origin]'s start — the "r_in - r_out"
    reindexing of the LocalStorage transformation (Fig 11b). *)

val propagate_param : param:string -> prange:range -> t -> t
(** Image of the subset as the map parameter sweeps its range
    (paper §4.3 step ❶). *)

val propagate_params : (string * range) list -> t -> t

(** {1 Concretization} *)

type concrete_range = { c_start : int; c_stop : int; c_stride : int }

val eval : (string -> int option) -> t -> concrete_range list
val eval_list : (string * int) list -> t -> concrete_range list
val concrete_size : concrete_range list -> int
val concrete_points : concrete_range list -> int list list
(** All points in row-major order; intended for small subsets (tests). *)

val pp_range : Format.formatter -> range -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
