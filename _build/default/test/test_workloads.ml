(* Workload tests: fundamental kernels against reference implementations,
   graph generators against Table 5's statistics, BFS conformance, SSE
   variants agreeing with each other. *)

module E = Symbolic.Expr
module T = Tasklang.Types
open Interp

let test_query_correctness () =
  let g = Workloads.Kernels.query () in
  let n = 64 in
  let data = Array.init n (fun i -> Float.rem (float_of_int (i * 37) /. 41.) 1.0) in
  let col = Tensor.of_float_array T.F64 [| n |] data in
  let out = Tensor.create T.F64 [| n |] in
  let count = Tensor.create T.I64 [||] in
  ignore
    (Exec.run g ~symbols:[ ("N", n) ]
       ~args:[ ("column", col); ("output", out); ("count", count) ]);
  let expected = Array.to_list data |> List.filter (fun v -> v > 0.5) in
  Alcotest.(check int) "count" (List.length expected)
    (T.to_int (Tensor.get_scalar count));
  (* compacted prefix of the output matches the filtered values in order *)
  let got = Tensor.to_float_list out in
  List.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12)) (Fmt.str "output[%d]" i) v
        (List.nth got i))
    expected

let test_histogram_correctness () =
  let g = Workloads.Kernels.histogram () in
  let h, w = (16, 16) in
  let img =
    Tensor.init T.F64 [| h; w |] (fun idx ->
        match idx with
        | [ y; x ] -> T.F (Float.rem (float_of_int ((y * 31) + x) /. 77.) 1.0)
        | _ -> T.F 0.)
  in
  let hist = Tensor.create T.I64 [| 256 |] in
  ignore
    (Exec.run g ~symbols:[ ("H", h); ("W", w) ]
       ~args:[ ("image", img); ("hist", hist) ]);
  let reference = Array.make 256 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = T.to_float (Tensor.get img [ y; x ]) in
      let b = min 255 (max 0 (int_of_float (floor (v *. 256.)))) in
      reference.(b) <- reference.(b) + 1
    done
  done;
  List.iteri
    (fun i v ->
      Alcotest.(check int) (Fmt.str "bin %d" i) reference.(i)
        (int_of_float v))
    (Tensor.to_float_list hist)

let test_mm_variants_agree () =
  (* the WCR form and the map-reduce form compute the same product *)
  let m, n, k = (5, 6, 7) in
  let run g =
    let a =
      Tensor.init T.F64 [| m; k |] (fun idx ->
          match idx with [ i; j ] -> T.F (float_of_int ((i * 2) - j)) | _ -> T.F 0.)
    in
    let b =
      Tensor.init T.F64 [| k; n |] (fun idx ->
          match idx with [ i; j ] -> T.F (float_of_int (i + (3 * j))) | _ -> T.F 0.)
    in
    let c = Tensor.create T.F64 [| m; n |] in
    ignore
      (Exec.run g
         ~symbols:[ ("M", m); ("N", n); ("K", k) ]
         ~args:[ ("A", a); ("B", b); ("C", c) ]);
    Tensor.to_float_list c
  in
  Alcotest.(check (list (float 1e-9)))
    "wcr = mapreduce"
    (run (Workloads.Kernels.matmul ()))
    (run (Workloads.Kernels.matmul_mapreduce ()))

let test_csr_generator () =
  let rows = 100 and cols = 80 in
  let rp, ci, v = Workloads.Kernels.csr_matrix ~rows ~cols ~nnz_per_row:5 ~seed:3 in
  Alcotest.(check int) "row_ptr length" (rows + 1) (Array.length rp);
  Alcotest.(check int) "nnz consistent" rp.(rows) (Array.length v);
  Alcotest.(check int) "cols consistent" (Array.length ci) (Array.length v);
  Array.iter
    (fun c -> Alcotest.(check bool) "col in range" true (c >= 0 && c < cols))
    ci;
  (* row_ptr monotone *)
  for r = 0 to rows - 1 do
    Alcotest.(check bool) "monotone" true (rp.(r) <= rp.(r + 1))
  done

let test_graph_generators () =
  let road = Workloads.Graphs.road_grid ~width:32 ~height:32 ~seed:1 in
  Alcotest.(check bool)
    (Fmt.str "road avg degree %.2f ~ 2.4 (Table 5)" road.gr_avg_degree)
    true
    (road.gr_avg_degree > 1.5 && road.gr_avg_degree < 3.2);
  Alcotest.(check bool) "road max degree <= 4" true (road.gr_max_degree <= 4);
  let social = Workloads.Graphs.rmat ~scale:10 ~edge_factor:16 ~seed:1 in
  Alcotest.(check bool)
    (Fmt.str "rmat is skewed: max %d >> avg %.1f" social.gr_max_degree
       social.gr_avg_degree)
    true
    (float_of_int social.gr_max_degree > 10. *. social.gr_avg_degree);
  (* road networks have much higher diameter than social networks *)
  let road_levels = Workloads.Graphs.bfs_levels road ~source:0 in
  let social_levels = Workloads.Graphs.bfs_levels social ~source:0 in
  Alcotest.(check bool)
    (Fmt.str "diameter: road %d >> social %d" road_levels social_levels)
    true
    (road_levels > 3 * social_levels)

let test_bfs_conformance () =
  List.iter
    (fun gr ->
      let depth_sdfg = Workloads.Graphs.run_bfs gr ~source:0 in
      let depth_ref = Workloads.Graphs.reference_bfs gr ~source:0 in
      Array.iteri
        (fun v d ->
          Alcotest.(check int)
            (Fmt.str "%s depth[%d]" gr.Workloads.Graphs.gr_name v)
            d
            (T.to_int (Tensor.get depth_sdfg [ v ])))
        depth_ref)
    [ Workloads.Graphs.road_grid ~width:8 ~height:8 ~seed:5;
      Workloads.Graphs.rmat ~scale:7 ~edge_factor:8 ~seed:5 ]

let test_sse_variants_agree () =
  let sizes = Workloads.Sse.mini in
  let shape_of names =
    names |> List.map (fun n -> List.assoc n sizes) |> Array.of_list
  in
  let run g =
    let hg =
      Tensor.init T.F64
        (shape_of [ "NI"; "NKZ"; "NE"; "NB"; "NB" ])
        (fun idx -> T.F (sin (float_of_int (List.fold_left ( + ) 0 idx))))
    in
    let hd =
      Tensor.init T.F64
        (shape_of [ "NI"; "NQZ"; "NW"; "NB"; "NB" ])
        (fun idx -> T.F (cos (float_of_int (List.fold_left ( + ) 1 idx))))
    in
    let sigma = Tensor.create T.F64 (shape_of [ "NKZ"; "NE"; "NB" ]) in
    ignore
      (Exec.run g ~symbols:sizes
         ~args:[ ("HG", hg); ("HD", hd); ("Sigma", sigma) ]);
    Tensor.to_float_list sigma
  in
  Alcotest.(check (list (float 1e-9)))
    "batched = naive (Fig. 18 steps preserve the contraction)"
    (run (Workloads.Sse.naive ()))
    (run (Workloads.Sse.batched ()))

let suite =
  [ ("query filters and counts", `Quick, test_query_correctness);
    ("histogram bins correctly", `Quick, test_histogram_correctness);
    ("MM variants agree", `Quick, test_mm_variants_agree);
    ("CSR generator invariants", `Quick, test_csr_generator);
    ("graph generators match Table 5 statistics", `Quick,
      test_graph_generators);
    ("BFS conforms to reference", `Quick, test_bfs_conformance);
    ("SSE naive = batched", `Quick, test_sse_variants_agree) ]
