(* IR-level tests: state graph operations, scope computation, memlet
   paths, validation errors, propagation, and Graphviz export. *)

module E = Symbolic.Expr
module S = Symbolic.Subset
module T = Tasklang.Types
open Sdfg_ir
open Builder

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let test_graph_ops () =
  let st = State.create 0 in
  let a = State.add_node st (Defs.Access "A") in
  let b = State.add_node st (Defs.Access "B") in
  let c = State.add_node st (Defs.Access "C") in
  let e1 = State.add_edge st ~src:a ~dst:b () in
  ignore (State.add_edge st ~src:b ~dst:c ());
  Alcotest.(check int) "nodes" 3 (State.num_nodes st);
  Alcotest.(check int) "edges" 2 (State.num_edges st);
  Alcotest.(check (list int)) "topo" [ a; b; c ] (State.topological_order st);
  Alcotest.(check (list int)) "succ of a" [ b ] (State.successors st a);
  Alcotest.(check (list int)) "pred of c" [ b ] (State.predecessors st c);
  State.remove_edge st e1.Defs.e_id;
  Alcotest.(check int) "edge removed" 1 (State.num_edges st);
  State.remove_node st b;
  Alcotest.(check int) "node removal drops incident edges" 0
    (State.num_edges st);
  (* cycles are rejected *)
  let st2 = State.create 1 in
  let x = State.add_node st2 (Defs.Access "X") in
  let y = State.add_node st2 (Defs.Access "Y") in
  ignore (State.add_edge st2 ~src:x ~dst:y ());
  ignore (State.add_edge st2 ~src:y ~dst:x ());
  Alcotest.check_raises "cycle detected"
    (Defs.Invalid_sdfg "state \"state\": dataflow graph has a cycle")
    (fun () -> ignore (State.topological_order st2))

let test_scopes () =
  let g = Fixtures.vector_add () in
  let st = Sdfg.start_state g in
  let entry, _ = List.hd (State.map_entries st) in
  let parents = State.scope_parents st in
  let body = State.scope_nodes st entry in
  Alcotest.(check int) "one node inside the map scope" 1 (List.length body);
  List.iter
    (fun nid ->
      Alcotest.(check (option int)) "body parent is the entry" (Some entry)
        (Hashtbl.find parents nid))
    body;
  (* connected components: one component *)
  Alcotest.(check int) "one component" 1
    (List.length (State.connected_components st))

let test_memlet_path () =
  let g = Fixtures.vector_add () in
  let st = Sdfg.start_state g in
  (* the edge A-access -> map entry continues to the tasklet *)
  let edge =
    State.edges st
    |> List.find (fun (e : Defs.edge) ->
           match State.node st e.Defs.e_src with
           | Defs.Access "A" -> true
           | _ -> false)
  in
  let path = State.memlet_path st edge in
  Alcotest.(check int) "path spans entry" 2 (List.length path);
  (match State.node st (List.nth path 1).Defs.e_dst with
  | Defs.Tasklet t -> Alcotest.(check string) "ends at tasklet" "add" t.t_name
  | _ -> Alcotest.fail "path should end at the tasklet")

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_sdfg" name
  | exception Defs.Invalid_sdfg _ -> ()

let test_validation_errors () =
  (* memlet referencing an unknown container *)
  expect_invalid "unknown container" (fun () ->
      let g, st = Build.single_state "bad" in
      Sdfg.add_array g "A" ~shape:[ E.int 4 ] ~dtype:T.F64;
      let a = Build.access st "A" in
      let b = State.add_node st (Defs.Access "GHOST") in
      Build.edge st ~memlet:(Memlet.element "GHOST" [ E.zero ]) ~src:a ~dst:b
        ();
      Validate.check g);
  (* dimensionality mismatch *)
  expect_invalid "rank mismatch" (fun () ->
      let g, st = Build.single_state "bad2" in
      Sdfg.add_array g "A" ~shape:[ E.int 4; E.int 4 ] ~dtype:T.F64;
      ignore
        (Build.simple_tasklet g st ~name:"t"
           ~ins:[ Build.in_elem "a" "A" [ E.zero ] ]
           ~outs:[] ~code:(`Src "x = a") ());
      Validate.check g);
  (* tasklet reading a name that is neither connector nor local *)
  expect_invalid "tasklet external access" (fun () ->
      let g, st = Build.single_state "bad3" in
      Sdfg.add_array g "A" ~shape:[ E.int 4 ] ~dtype:T.F64;
      ignore
        (Build.simple_tasklet g st ~name:"t" ~ins:[]
           ~outs:[ Build.out_elem "o" "A" [ E.zero ] ]
           ~code:(`Src "o = hidden_global") ());
      Validate.check g);
  (* duplicate map parameters *)
  expect_invalid "duplicate params" (fun () ->
      let g, st = Build.single_state ~symbols:[ "N" ] "bad4" in
      Sdfg.add_array g "A" ~shape:[ E.sym "N" ] ~dtype:T.F64;
      ignore
        (Build.mapped_tasklet g st ~name:"t" ~params:[ "i"; "i" ]
           ~ranges:[ S.full (E.sym "N"); S.full (E.sym "N") ]
           ~ins:[]
           ~outs:[ Build.out_elem "o" "A" [ E.sym "i" ] ]
           ~code:(`Src "o = 1.0") ());
      Validate.check g);
  (* GPU thread-block schedule outside a GPU device map *)
  expect_invalid "schedule nesting" (fun () ->
      let g, st = Build.single_state ~symbols:[ "N" ] "bad5" in
      Sdfg.add_array g "A" ~shape:[ E.sym "N" ] ~dtype:T.F64;
      ignore
        (Build.mapped_tasklet g st ~name:"t" ~params:[ "i" ]
           ~schedule:Defs.Gpu_threadblock
           ~ranges:[ S.full (E.sym "N") ]
           ~ins:[]
           ~outs:[ Build.out_elem "o" "A" [ E.sym "i" ] ]
           ~code:(`Src "o = 1.0") ());
      Validate.check g)

let test_propagation () =
  let g = Fixtures.vector_add () in
  let st = Sdfg.start_state g in
  (* the outer edge into the map entry must carry the propagated subset *)
  let entry, _ = List.hd (State.map_entries st) in
  let outer = List.hd (State.in_edges st entry) in
  let m = Option.get outer.Defs.e_memlet in
  Alcotest.(check string) "propagated image" "[0:N]"
    (S.to_string m.Defs.m_subset);
  (* access count = one per iteration *)
  Alcotest.(check string) "access count" "N"
    (E.to_string m.Defs.m_accesses)

let test_free_symbols () =
  let g = Fixtures.vector_add () in
  Alcotest.(check (list string)) "free symbols" [ "N" ] (Sdfg.free_symbols g);
  let g2 = Fixtures.laplace () in
  Alcotest.(check (list string)) "laplace symbols" [ "N"; "T" ]
    (Sdfg.free_symbols g2)

let test_dot_export () =
  let g = Fixtures.matmul_mapreduce () in
  let dot = Dot.of_sdfg g in
  Alcotest.(check bool) "has digraph" true (contains dot "digraph");
  Alcotest.(check bool) "access ellipse" true (contains dot "shape=ellipse");
  Alcotest.(check bool) "map trapezium" true (contains dot "shape=trapezium");
  Alcotest.(check bool) "reduce triangle" true
    (contains dot "shape=invtriangle");
  (* WCR memlets render dashed, as in the paper's figures *)
  let g3 = Fixtures.matmul_wcr () in
  Alcotest.(check bool) "WCR dashed" true
    (contains (Dot.of_sdfg g3) "style=dashed")

let test_clone_independence () =
  let g = Fixtures.vector_add () in
  let g' = Sdfg.clone g in
  let st' = Sdfg.start_state g' in
  (* mutate the clone; the original must be unaffected *)
  let n = State.num_nodes (Sdfg.start_state g) in
  State.remove_node st' (fst (List.hd (State.map_entries st')));
  Alcotest.(check int) "original intact" n
    (State.num_nodes (Sdfg.start_state g))

let test_wcr_semantics () =
  let check_id wcr dt expect =
    match Wcr.identity wcr dt with
    | Some v -> Alcotest.(check (float 0.)) "identity" expect (T.to_float v)
    | None -> Alcotest.fail "expected identity"
  in
  check_id Wcr.sum T.F64 0.;
  check_id Wcr.prod T.F64 1.;
  let v =
    Wcr.apply (Wcr.of_code "old + 2 * new") ~old_v:(T.F 1.) ~new_v:(T.F 3.)
  in
  Alcotest.(check (float 1e-12)) "custom combiner" 7. (T.to_float v)

(* property: WCR sum application is order-insensitive over a batch *)
let prop_wcr_commutes =
  QCheck2.Test.make ~count:200 ~name:"WCR sum is order-insensitive"
    QCheck2.Gen.(list_size (int_range 1 12) (int_range (-50) 50))
    (fun xs ->
      let fold order =
        List.fold_left
          (fun acc v -> Wcr.apply Wcr.sum ~old_v:acc ~new_v:(T.I v))
          (T.I 0) order
      in
      T.to_int (fold xs) = T.to_int (fold (List.rev xs)))

let suite =
  [ ("state graph operations", `Quick, test_graph_ops);
    ("scope computation", `Quick, test_scopes);
    ("memlet paths", `Quick, test_memlet_path);
    ("validation rejects malformed SDFGs", `Quick, test_validation_errors);
    ("memlet propagation on the IR", `Quick, test_propagation);
    ("free symbol inference", `Quick, test_free_symbols);
    ("Graphviz export", `Quick, test_dot_export);
    ("clone independence", `Quick, test_clone_independence);
    ("WCR semantics", `Quick, test_wcr_semantics) ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_wcr_commutes ]
