test/test_symbolic.ml: Alcotest List QCheck2 QCheck_alcotest Symbolic
