test/fixtures.ml: Bexp Build Builder Defs List Memlet Option Propagate Sdfg Sdfg_ir State Symbolic Tasklang Wcr
