test/test_machine.ml: Alcotest Baselines Fixtures Float Fmt List Machine Sdfg_ir Symbolic Transform Workloads
