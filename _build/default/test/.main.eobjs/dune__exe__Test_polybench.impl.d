test/test_polybench.ml: Alcotest Array Defs Exec Float Fmt Hashtbl Interp List Sdfg Sdfg_ir String Symbolic Tasklang Tensor Transform Validate Workloads
