test/test_tasklang.ml: Alcotest Array Ast Emit Eval List Parse String Tasklang Typecheck Types
