test/test_codegen.ml: Alcotest Codegen Fixtures List String Symbolic Transform Workloads
