test/test_crossval.ml: Alcotest Exec Float Fmt Interp List Machine Sdfg Sdfg_ir State String Symbolic Tasklang Tensor Transform Workloads
