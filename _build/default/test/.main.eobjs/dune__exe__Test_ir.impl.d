test/test_ir.ml: Alcotest Build Builder Defs Dot Fixtures Hashtbl List Memlet Option QCheck2 QCheck_alcotest Sdfg Sdfg_ir State String Symbolic Tasklang Validate Wcr
