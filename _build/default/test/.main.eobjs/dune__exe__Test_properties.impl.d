test/test_properties.ml: Defs Exec Fixtures Float Interp List QCheck2 QCheck_alcotest Sdfg Sdfg_ir Serialize Symbolic Tasklang Tensor Transform Validate
