test/main.mli:
