test/test_serialize.ml: Alcotest Exec Fixtures Interp List Sdfg Sdfg_ir Serialize State Tasklang Tensor Transform Validate Workloads
