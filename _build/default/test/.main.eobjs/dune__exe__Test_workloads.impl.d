test/test_workloads.ml: Alcotest Array Exec Float Fmt Interp List Symbolic Tasklang Tensor Workloads
