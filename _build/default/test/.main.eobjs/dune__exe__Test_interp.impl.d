test/test_interp.ml: Alcotest Array Builder Exec Fixtures Float Fmt Interp List QCheck2 QCheck_alcotest Sdfg_ir Symbolic Tasklang Tensor
