test/test_ndlang.ml: Alcotest Builder Exec Fmt Interp List Symbolic Tasklang Tensor Transform
