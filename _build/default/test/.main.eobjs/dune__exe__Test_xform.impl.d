test/test_xform.ml: Alcotest Builder Defs Exec Fixtures Fmt Interp List Machine Memlet Sdfg Sdfg_ir State String Symbolic Tasklang Tensor Transform Workloads
