(* Tests for the tasklet mini-language: parser, type inference, evaluator
   and C emission. *)

open Tasklang

let eval_f code scalars =
  let result = ref Types.(F nan) in
  let bindings =
    List.map (fun (n, v) -> (n, Eval.Scalar (Types.F v))) scalars
    @ [ ("out",
         Eval.Buffer
           ((fun _ -> !result), fun _ v -> result := v)) ]
  in
  Eval.run ~bindings (Parse.program code);
  Types.to_float !result

let test_arith () =
  Alcotest.(check (float 1e-12)) "add" 5. (eval_f "out = a + b" [ ("a", 2.); ("b", 3.) ]);
  Alcotest.(check (float 1e-12)) "prec" 7. (eval_f "out = 1 + 2 * 3" []);
  Alcotest.(check (float 1e-12)) "paren" 9. (eval_f "out = (1 + 2) * 3" []);
  Alcotest.(check (float 1e-12)) "pow" 8. (eval_f "out = 2 ** 3" []);
  Alcotest.(check (float 1e-12)) "unary" (-3.) (eval_f "out = -3" []);
  Alcotest.(check (float 1e-12)) "fdiv" 2.5 (eval_f "out = 5.0 / 2" [])

let test_intrinsics () =
  Alcotest.(check (float 1e-12)) "sqrt" 3. (eval_f "out = sqrt(9.0)" []);
  Alcotest.(check (float 1e-12)) "min" 2. (eval_f "out = min(2, 7)" []);
  Alcotest.(check (float 1e-12)) "max" 7. (eval_f "out = max(2, 7)" []);
  Alcotest.(check (float 1e-12)) "abs" 4. (eval_f "out = abs(-4)" []);
  Alcotest.(check (float 1e-9)) "exp(0)" 1. (eval_f "out = exp(0.0)" [])

let test_locals_and_if () =
  Alcotest.(check (float 1e-12)) "local"
    14.
    (eval_f "t = a * 2\nout = t + 4" [ ("a", 5.) ]);
  Alcotest.(check (float 1e-12)) "if taken"
    1.
    (eval_f "if a > 0 { out = 1 } else { out = 2 }" [ ("a", 5.) ]);
  Alcotest.(check (float 1e-12)) "else taken"
    2.
    (eval_f "if a > 0 { out = 1 } else { out = 2 }" [ ("a", -5.) ]);
  Alcotest.(check (float 1e-12)) "ternary"
    10.
    (eval_f "out = 10 if a > 1 else 20" [ ("a", 2.) ])

let test_int_semantics () =
  let eval_i code scalars =
    let result = ref Types.(I 0) in
    let bindings =
      List.map (fun (n, v) -> (n, Eval.Scalar (Types.I v))) scalars
      @ [ ("out", Eval.Buffer ((fun _ -> !result), fun _ v -> result := v)) ]
    in
    Eval.run ~bindings (Parse.program code);
    Types.to_int !result
  in
  Alcotest.(check int) "int floor div" (-4) (eval_i "out = a / 2" [ ("a", -7) ]);
  Alcotest.(check int) "int mod" 1 (eval_i "out = a % 2" [ ("a", -7) ]);
  Alcotest.(check int) "int pow" 81 (eval_i "out = 3 ** 4" [])

let test_buffer_access () =
  let data = [| 10.; 20.; 30.; 40. |] in
  let out = ref 0. in
  let bindings =
    [ ("a",
       Eval.Buffer
         ((fun idx -> Types.F data.(List.hd idx)), fun _ _ -> assert false));
      ("i", Eval.Scalar (Types.I 2));
      ("out",
       Eval.Buffer
         ((fun _ -> Types.F !out), fun _ v -> out := Types.to_float v)) ]
  in
  Eval.run ~bindings (Parse.program "out = a[i] + a[i + 1]");
  Alcotest.(check (float 1e-12)) "indexed" 70. !out

let test_parse_errors () =
  let fails s =
    match Parse.program s with
    | exception Parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "out = ";
  fails "= 3";
  fails "out = foo(1, 2, 3)";
  fails "out = (1 + 2";
  fails "if a { out = 1"

let test_reads_writes () =
  let code = Parse.program "t = a * b\nout = t + c[i]" in
  Alcotest.(check (list string)) "writes" [ "out"; "t" ] (Ast.writes code);
  Alcotest.(check (list string))
    "reads" [ "a"; "b"; "c"; "i"; "t" ] (Ast.reads code)

let conns =
  [ { Typecheck.c_name = "a"; c_dtype = Types.F64; c_rank = 0 };
    { Typecheck.c_name = "v"; c_dtype = Types.F32; c_rank = 1 };
    { Typecheck.c_name = "n"; c_dtype = Types.I64; c_rank = 0 };
    { Typecheck.c_name = "out"; c_dtype = Types.F64; c_rank = 0 } ]

let test_typecheck () =
  let locals = Typecheck.check ~connectors:conns (Parse.program "t = n + 1\nout = a * t") in
  Alcotest.(check bool) "t is int" true
    (List.assoc "t" locals = Types.I64);
  let fails code =
    match Typecheck.check ~connectors:conns (Parse.program code) with
    | exception Types.Type_error _ -> ()
    | _ -> Alcotest.failf "expected type error for %S" code
  in
  fails "out = q + 1";           (* unbound *)
  fails "out = v[1, 2]";         (* rank mismatch *)
  fails "out = v[a]"             (* non-integer index *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let test_emit_c () =
  let c = Emit.to_c ~connectors:conns (Parse.program "t = n + 1\nout = a * t") in
  Alcotest.(check bool) "declares local" true (contains c "long long t = ");
  Alcotest.(check bool) "assignment" true (contains c "out = (a * t);")

let eval_f_ast code a =
  let result = ref Types.(F nan) in
  let bindings =
    [ ("a", Eval.Scalar (Types.F a));
      ("out", Eval.Buffer ((fun _ -> !result), fun _ v -> result := v)) ]
  in
  Eval.run ~bindings code;
  Types.to_float !result

let test_roundtrip () =
  (* pretty-printed code re-parses to the same evaluation *)
  let code = Parse.program "t = a * 2.0 + 1.0\nout = max(t, a) if a > 0 else -t" in
  let printed = Ast.to_string code in
  let reparsed = Parse.program printed in
  List.iter
    (fun a ->
      let v1 = eval_f_ast code a and v2 = eval_f_ast reparsed a in
      Alcotest.(check (float 1e-12)) "roundtrip value" v1 v2)
    [ -3.; 0.; 2.5 ]

let suite =
  [ ("arithmetic", `Quick, test_arith);
    ("intrinsics", `Quick, test_intrinsics);
    ("locals and control flow", `Quick, test_locals_and_if);
    ("integer semantics", `Quick, test_int_semantics);
    ("buffer access", `Quick, test_buffer_access);
    ("parse errors", `Quick, test_parse_errors);
    ("reads/writes analysis", `Quick, test_reads_writes);
    ("type inference", `Quick, test_typecheck);
    ("C emission", `Quick, test_emit_c);
    ("print/parse roundtrip", `Quick, test_roundtrip) ]
