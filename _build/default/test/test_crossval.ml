(* Cross-validation: the analytic machine model against the interpreter's
   measured instrumentation.  The model's operation and movement counts
   must agree with what actually executes — this is what makes the
   benchmark harness's modeled times trustworthy. *)

module E = Symbolic.Expr
module T = Tasklang.Types
module Cost = Machine.Cost
open Sdfg_ir
open Interp

let spec = Machine.Spec.paper_testbed

let close ?(tol = 0.05) a b =
  Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let test_matmul_counts () =
  let m, n, k = (8, 7, 6) in
  let symbols = [ ("M", m); ("N", n); ("K", k) ] in
  let g = Workloads.Kernels.matmul () in
  let a = Tensor.init T.F64 [| m; k |] (fun _ -> T.F 1.) in
  let b = Tensor.init T.F64 [| k; n |] (fun _ -> T.F 1.) in
  let c = Tensor.create T.F64 [| m; n |] in
  let stats = Exec.run g ~symbols ~args:[ ("A", a); ("B", b); ("C", c) ] in
  let r = Cost.estimate ~spec ~target:Cost.Tcpu ~symbols g in
  (* tasklet executions: model iterations = interpreter tasklet count *)
  Alcotest.(check bool)
    (Fmt.str "iterations %.0f ~ tasklets %d" r.Cost.r_acct.Cost.iterations
       stats.Exec.tasklet_execs)
    true
    (close r.Cost.r_acct.Cost.iterations (float_of_int stats.Exec.tasklet_execs));
  (* flops: 2 per multiply-accumulate = 2*M*N*K *)
  Alcotest.(check bool)
    (Fmt.str "flops %.0f ~ 2MNK %d" r.Cost.r_flops (2 * m * n * k))
    true
    (close r.Cost.r_flops (float_of_int (2 * m * n * k)));
  (* WCR commits observed by the interpreter equal M*N*K *)
  Alcotest.(check int) "interpreter WCR count" (m * n * k)
    stats.Exec.wcr_writes

let test_stencil_counts () =
  let nsize = 16 and t = 3 in
  let symbols = [ ("N", nsize); ("T", t) ] in
  let g = Workloads.Kernels.jacobi () in
  let a = Tensor.init T.F64 [| nsize; nsize |] (fun _ -> T.F 1.) in
  let b = Tensor.create T.F64 [| nsize; nsize |] in
  let stats = Exec.run g ~symbols ~args:[ ("A", a); ("B", b) ] in
  let r = Cost.estimate ~spec ~target:Cost.Tcpu ~symbols g in
  (* 2 sweeps per step over the (N-2)^2 interior *)
  let expected = 2 * t * (nsize - 2) * (nsize - 2) in
  Alcotest.(check int) "interpreter iterations" expected
    stats.Exec.tasklet_execs;
  Alcotest.(check bool)
    (Fmt.str "model iterations %.0f ~ %d" r.Cost.r_acct.Cost.iterations
       expected)
    true
    (close r.Cost.r_acct.Cost.iterations (float_of_int expected))

let test_bfs_counts () =
  (* the model's visit hints reproduce the interpreter's level count *)
  let gr = Workloads.Graphs.road_grid ~width:16 ~height:16 ~seed:9 in
  let levels = Workloads.Graphs.bfs_levels gr ~source:0 in
  Alcotest.(check bool) "road graph has many levels" true (levels > 8);
  let depth = Workloads.Graphs.run_bfs gr ~source:0 in
  let max_depth = ref 0 in
  for v = 0 to gr.gr_nodes - 1 do
    max_depth := max !max_depth (T.to_int (Tensor.get depth [ v ]))
  done;
  Alcotest.(check int) "levels = max depth + 1" levels (!max_depth + 1)

let test_transform_reduces_modeled_and_real_movement () =
  (* LocalStorage reduces both the modeled DRAM traffic and the
     interpreter's measured element movement for tiled GEMM *)
  let symbols = [ ("M", 8); ("N", 8); ("K", 8) ] in
  let build () =
    let g = Workloads.Kernels.matmul () in
    let tiling = Transform.Map_xforms.map_tiling_sized ~tile_sizes:[ 4 ] in
    let cand =
      tiling.Transform.Xform.x_find g
      |> List.find (fun c ->
             State.label (Sdfg.state g c.Transform.Xform.c_state) = "main")
    in
    Transform.Xform.apply g tiling cand;
    g
  in
  let run g =
    let a = Tensor.init T.F64 [| 8; 8 |] (fun _ -> T.F 1.) in
    let b = Tensor.init T.F64 [| 8; 8 |] (fun _ -> T.F 1.) in
    let c = Tensor.create T.F64 [| 8; 8 |] in
    Exec.run g ~symbols ~args:[ ("A", a); ("B", b); ("C", c) ]
  in
  let base = run (build ()) in
  let g = build () in
  (* pack the B tile *)
  let x = Transform.Data_xforms.local_storage in
  (match
     List.find_opt
       (fun c ->
         String.length c.Transform.Xform.c_note > 0
         && c.Transform.Xform.c_note.[0] = 'B')
       (x.Transform.Xform.x_find g)
   with
  | Some c -> Transform.Xform.apply g x c
  | None -> Alcotest.fail "no B candidate");
  let packed = run g in
  (* the interpreter still runs the same number of tasklets *)
  Alcotest.(check int) "same tasklet count" base.Exec.tasklet_execs
    packed.Exec.tasklet_execs;
  (* and the model sees less DRAM traffic *)
  let traffic g = (Cost.estimate ~spec ~target:Cost.Tcpu ~symbols g).Cost.r_bytes in
  Alcotest.(check bool) "modeled traffic not increased" true
    (traffic g <= traffic (build ()) +. 1.)

let suite =
  [ ("model vs interpreter: GEMM counts", `Quick, test_matmul_counts);
    ("model vs interpreter: stencil counts", `Quick, test_stencil_counts);
    ("model vs interpreter: BFS levels", `Quick, test_bfs_counts);
    ("LocalStorage effect, modeled and measured", `Quick,
      test_transform_reduces_modeled_and_real_movement) ]
